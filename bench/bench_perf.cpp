// Performance trajectory bench: fork cost, cache effectiveness, corpus
// throughput. Emits machine-readable BENCH_perf.json next to the text
// report so future PRs can diff perf numbers instead of prose.
//
//   bench_perf [--smoke] [--jobs N] [--out FILE]
//
// --smoke shrinks iteration counts for CI; --jobs sets the parallel leg
// of the throughput measurement (default 4).
//
// Three measurements:
//   fork        copy a fork-heavy SymState structurally (the COW path)
//               vs. copying it and then unsharing every page and map —
//               which is byte-for-byte the work the pre-COW deep copy
//               did on every fork. Reported as ns/fork and a ratio.
//   caches      solver-memoization hit rate (with the per-mechanism
//               breakdown: exact / model-reuse / subsumed) and
//               expression-interning dedup rate accumulated over a full
//               serial corpus run.
//   throughput  pairs/sec for the 15-pair corpus, serial vs. --jobs,
//               with a determinism cross-check: every verdict, type,
//               and reformed-PoC byte must match between the two runs.
//               The parallel leg feeds the serial run's per-pair wall
//               times back into VerifyCorpus as cost hints, so pairs
//               launch longest-first (LPT) — the fix for the tail-pair
//               convoy that made --jobs *slower* than serial when the
//               longest pair started last.
//   artifacts   the content-addressed store (DESIGN.md §11): a cold
//               corpus pass (cross-pair reuse only — pairs sharing an
//               origin S or target T hit each other's artifacts) and a
//               warm pass over the same store, both byte-identical to
//               the cache-off baseline. Reports the reuse rate and the
//               wall-time of the origin-sharing pairs with and without
//               a warm cache.
//   backends    solver-backend A/B: the whole corpus under the legacy
//               backtracker and the raced portfolio, diffed against the
//               propagate default, plus a pair-3 speedup measurement
//               (backtrack + no cycle skip, i.e. the PR 7 configuration,
//               vs. the current default) emitted as pair3_speedup.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/artifact_store.h"
#include "core/octopocs.h"
#include "core/parallel_verify.h"
#include "corpus/pairs.h"
#include "symex/solver.h"
#include "symex/state.h"

using namespace octopocs;
using Clock = std::chrono::steady_clock;

namespace {

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A state shaped like the deep end of a P2 run: several call frames,
/// a few KB of written symbolic memory, live heap records, a long
/// constraint vector, and loop bookkeeping.
symex::SymState BuildForkHeavyState() {
  symex::SymState s;
  for (int f = 0; f < 6; ++f) {
    symex::SymFrame frame;
    frame.fn = static_cast<vm::FuncId>(f);
    frame.regs.reserve(16);
    for (std::uint32_t r = 0; r < 16; ++r) {
      frame.regs.push_back(symex::MakeBinOp(
          vm::Op::kAdd, symex::MakeInput(r), symex::MakeConst(f * 16 + r)));
    }
    s.frames.push_back(std::move(frame));
  }
  for (std::uint64_t addr = 0; addr < 4096; ++addr) {
    s.mem.Set(vm::kHeapBase + addr,
              symex::MakeBinOp(vm::Op::kXor,
                               symex::MakeInput(addr % 64),
                               symex::MakeConst(addr)));
  }
  auto& heap = s.heap.mut();
  for (std::uint64_t i = 0; i < 64; ++i) {
    heap[vm::kHeapBase + i * 64] = symex::SymAlloc{64, true};
  }
  for (std::uint32_t c = 0; c < 256; ++c) {
    s.constraints.push_back(symex::MakeBinOp(vm::Op::kCmpNe,
                                             symex::MakeInput(c % 64),
                                             symex::MakeConst(c)));
  }
  auto& loops = s.loop_counts.mut();
  for (vm::BlockId b = 0; b < 32; ++b) {
    loops[{0, b, 0}] = symex::SymState::LoopEntry{3, 7};
  }
  return s;
}

struct ForkCost {
  double cow_ns = 0;
  double deep_ns = 0;
  double speedup = 0;
};

/// The byte-identity predicate every alternative execution strategy
/// (parallel jobs, artifact cache) is held to against the serial
/// cache-off baseline.
bool ReportsIdentical(const std::vector<core::VerificationReport>& a,
                      const std::vector<core::VerificationReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].verdict != b[i].verdict || a[i].type != b[i].type ||
        a[i].reformed_poc != b[i].reformed_poc ||
        a[i].bunch_offsets != b[i].bunch_offsets ||
        a[i].detail != b[i].detail) {
      return false;
    }
  }
  return true;
}

ForkCost MeasureForkCost(int iterations) {
  symex::InternScope intern;  // executor-realistic expression sharing
  const symex::SymState parent = BuildForkHeavyState();
  ForkCost cost;
  std::size_t sink = 0;  // defeats dead-copy elimination

  {
    const auto start = Clock::now();
    for (int i = 0; i < iterations; ++i) {
      symex::SymState fork = parent;       // structural COW fork
      sink += fork.frames.size();
    }
    cost.cow_ns = SecondsSince(start) * 1e9 / iterations;
  }
  {
    const auto start = Clock::now();
    for (int i = 0; i < iterations; ++i) {
      symex::SymState fork = parent;
      fork.mem.DetachAllPages();           // the pre-COW eager copy
      fork.heap.mut();
      fork.loop_counts.mut();
      sink += fork.mem.size();
    }
    cost.deep_ns = SecondsSince(start) * 1e9 / iterations;
  }
  if (sink == 0) std::printf("(unreachable)\n");
  cost.speedup = cost.cow_ns > 0 ? cost.deep_ns / cost.cow_ns : 0;
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  unsigned jobs = 4;
  std::string out_path = "BENCH_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  std::printf("=== Perf trajectory (fork cost, caches, throughput) ===\n\n");

  // -- Fork cost ------------------------------------------------------------
  const int fork_iters = smoke ? 500 : 10'000;
  const ForkCost fork = MeasureForkCost(fork_iters);
  std::printf("fork (COW):   %10.1f ns\n", fork.cow_ns);
  std::printf("fork (deep):  %10.1f ns   (pre-COW eager copy)\n",
              fork.deep_ns);
  std::printf("fork speedup: %10.1fx\n\n", fork.speedup);

  // -- Serial corpus run: cache stats + baseline wall clock -----------------
  const std::vector<corpus::Pair> pairs = corpus::BuildCorpus();
  const core::PipelineOptions opts;

  const auto serial_start = Clock::now();
  const auto serial = core::VerifyCorpus(pairs, opts, 1);
  const double serial_seconds = SecondsSince(serial_start);

  unsigned long long cache_hits = 0, cache_misses = 0;
  unsigned long long exact_hits = 0, reuse_hits = 0;
  unsigned long long subsume_hits = 0;
  unsigned long long intern_hits = 0, intern_nodes = 0;
  std::vector<double> pair_seconds;
  pair_seconds.reserve(serial.size());
  for (const core::VerificationReport& r : serial) {
    cache_hits += r.symex_stats.solver_cache_hits;
    cache_misses += r.symex_stats.solver_cache_misses;
    exact_hits += r.symex_stats.solver_exact_hits;
    reuse_hits += r.symex_stats.solver_model_reuse_hits;
    subsume_hits += r.symex_stats.solver_subsumption_hits;
    intern_hits += r.symex_stats.expr_intern_hits;
    intern_nodes += r.symex_stats.expr_intern_nodes;
    pair_seconds.push_back(r.timings.total_seconds);
  }
  const double cache_rate =
      cache_hits + cache_misses > 0
          ? static_cast<double>(cache_hits) / (cache_hits + cache_misses)
          : 0;
  const double intern_rate =
      intern_hits + intern_nodes > 0
          ? static_cast<double>(intern_hits) / (intern_hits + intern_nodes)
          : 0;
  // Per-mechanism rates over all lookups, so a regression in one cache
  // tier shows up as a rate shift even when the total hit rate holds.
  const unsigned long long lookups = cache_hits + cache_misses;
  const auto rate_of = [lookups](unsigned long long hits) {
    return lookups > 0 ? static_cast<double>(hits) / lookups : 0.0;
  };
  const double exact_rate = rate_of(exact_hits);
  const double reuse_rate_solver = rate_of(reuse_hits);
  const double subsume_rate = rate_of(subsume_hits);
  std::printf("solver cache: %llu hit / %llu miss (%.1f%% hit rate)\n",
              cache_hits, cache_misses, cache_rate * 100);
  std::printf("  by kind:    exact %llu (%.1f%%) | model-reuse %llu (%.1f%%)"
              " | subsumed %llu (%.1f%%)\n",
              exact_hits, exact_rate * 100, reuse_hits,
              reuse_rate_solver * 100, subsume_hits, subsume_rate * 100);
  std::printf("interner:     %llu deduped / %llu distinct (%.1f%% of "
              "constructions)\n\n",
              intern_hits, intern_nodes, intern_rate * 100);

  // -- Parallel corpus run + determinism cross-check ------------------------
  // The serial leg just measured every pair, so hand those wall times to
  // the scheduler: longest pair first keeps the big pair off the tail of
  // the schedule, where it serializes the whole run behind one worker.
  //
  // On a single-core host the leg is timing theater — threads just take
  // turns — and the "speedup" it reports (≈1x at best) used to trip
  // regression diffs. So the timing leg only runs with ≥2 hardware
  // threads; a 1-cpu host records parallel_leg: "skipped (1 cpu)" and
  // downstream gates key off that field instead of a meaningless ratio.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool run_parallel = hw >= 2;
  double parallel_seconds = 0;
  bool identical = true;
  if (run_parallel) {
    const auto par_start = Clock::now();
    const auto parallel = core::VerifyCorpus(pairs, opts, jobs,
                                             /*pair_deadline_ms=*/0,
                                             &pair_seconds);
    parallel_seconds = SecondsSince(par_start);
    identical = ReportsIdentical(serial, parallel);
  }
  const double speedup =
      parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0;
  if (run_parallel) {
    std::printf("corpus:       %.3f s serial | %.3f s with %u jobs "
                "(%.2fx, %.1f pairs/s, longest-first)\n",
                serial_seconds, parallel_seconds, jobs, speedup,
                parallel_seconds > 0 ? pairs.size() / parallel_seconds : 0);
    std::printf("host:         %u hardware thread%s — wall-clock speedup is "
                "bounded by this, not by --jobs\n",
                hw, hw == 1 ? "" : "s");
    std::printf("determinism:  parallel results %s serial\n\n",
                identical ? "byte-identical to" : "DIVERGED from");
  } else {
    std::printf("corpus:       %.3f s serial | parallel leg skipped "
                "(1 hardware thread — no concurrency to measure)\n\n",
                serial_seconds);
  }

  // -- Artifact-cache legs: cold (cross-pair reuse), then warm --------------
  core::ArtifactStore store;
  core::PipelineOptions cached_opts;
  cached_opts.artifacts = &store;

  const auto cold_start = Clock::now();
  const auto cache_cold = core::VerifyCorpus(pairs, cached_opts, 1);
  const double cache_cold_seconds = SecondsSince(cold_start);
  const core::ArtifactStore::Stats cold_stats = store.stats();

  const auto warm_start = Clock::now();
  const auto cache_warm = core::VerifyCorpus(pairs, cached_opts, 1);
  const double cache_warm_seconds = SecondsSince(warm_start);
  const core::ArtifactStore::Stats total_stats = store.stats();

  const unsigned long long warm_hits = total_stats.hits - cold_stats.hits;
  const unsigned long long warm_misses =
      total_stats.misses - cold_stats.misses;
  const double reuse_rate =
      warm_hits + warm_misses > 0
          ? static_cast<double>(warm_hits) / (warm_hits + warm_misses)
          : 0;
  const bool artifact_identical = ReportsIdentical(serial, cache_cold) &&
                                  ReportsIdentical(serial, cache_warm);

  // Wall time spent on the pairs that share their origin S (or target T)
  // with another pair — the population the store exists for.
  const bool shared_origin[16] = {false, true, true,  false, false, false,
                                  true,  true, false, false, true,  true,
                                  true,  true, true,  false};
  double shared_baseline_seconds = 0, shared_warm_seconds = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].idx < 16 && shared_origin[pairs[i].idx]) {
      shared_baseline_seconds += serial[i].timings.total_seconds;
      shared_warm_seconds += cache_warm[i].timings.total_seconds;
    }
  }

  std::printf("artifacts:    cold %.3f s (%llu cross-pair hit%s) | warm "
              "%.3f s (%llu hit / %llu miss, %.0f%% reuse)\n",
              cache_cold_seconds,
              static_cast<unsigned long long>(cold_stats.hits),
              cold_stats.hits == 1 ? "" : "s", cache_warm_seconds, warm_hits,
              warm_misses, reuse_rate * 100);
  std::printf("  shared-origin pairs: %.3f s baseline -> %.3f s warm\n",
              shared_baseline_seconds, shared_warm_seconds);
  std::printf("  identity:   cached results %s the cache-off baseline\n\n",
              artifact_identical ? "byte-identical to" : "DIVERGED from");

  // -- Solver backend A/B: corpus identity + pair-3 speedup -----------------
  // The propagation core (the default, measured by the serial leg above)
  // must be answer-identical to the legacy backtracker and to the raced
  // portfolio over the whole corpus — the same bar the dispatch modes
  // are held to.
  core::PipelineOptions backtrack_opts;
  core::SetSolverBackend(backtrack_opts, symex::SolverBackendKind::kBacktrack);
  const auto corpus_backtrack = core::VerifyCorpus(pairs, backtrack_opts, 1);
  core::PipelineOptions portfolio_opts;
  core::SetSolverBackend(portfolio_opts, symex::SolverBackendKind::kPortfolio);
  const auto corpus_portfolio = core::VerifyCorpus(pairs, portfolio_opts, 1);
  const bool backend_identical = ReportsIdentical(serial, corpus_backtrack) &&
                                 ReportsIdentical(serial, corpus_portfolio);
  std::printf("backends:     backtrack/portfolio corpus results %s the "
              "propagate default\n",
              backend_identical ? "byte-identical to" : "DIVERGED from");

  // Pair idx 3 is the corpus's long pole. The baseline leg runs it the
  // way PR 7 shipped — legacy backtracking search, cycle fast-forward
  // off — against the current default (propagation core, cycle skip
  // on). Best-of-N wall times so scheduler noise cannot fake a
  // regression; identity of the two reports is part of the gate.
  std::size_t pair3 = pairs.size();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].idx == 3) pair3 = i;
  }
  double pair3_baseline_seconds = 0, pair3_optimized_seconds = 0;
  double pair3_speedup = 0;
  bool pair3_identical = true;
  if (pair3 < pairs.size()) {
    core::PipelineOptions pr7_opts;
    core::SetSolverBackend(pr7_opts, symex::SolverBackendKind::kBacktrack);
    core::SetCycleSkip(pr7_opts, false);
    const int reps = smoke ? 1 : 3;
    core::VerificationReport baseline_rep, optimized_rep;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      baseline_rep = core::VerifyPair(pairs[pair3], pr7_opts);
      const double s = SecondsSince(t0);
      if (r == 0 || s < pair3_baseline_seconds) pair3_baseline_seconds = s;
      const auto t1 = Clock::now();
      optimized_rep = core::VerifyPair(pairs[pair3], opts);
      const double o = SecondsSince(t1);
      if (r == 0 || o < pair3_optimized_seconds) pair3_optimized_seconds = o;
    }
    pair3_speedup = pair3_optimized_seconds > 0
                        ? pair3_baseline_seconds / pair3_optimized_seconds
                        : 0;
    pair3_identical = ReportsIdentical({baseline_rep}, {optimized_rep});
    std::printf("pair 3:       %.3f s baseline (backtrack, no cycle skip) | "
                "%.3f s optimized (%.1fx, reports %s)\n\n",
                pair3_baseline_seconds, pair3_optimized_seconds,
                pair3_speedup,
                pair3_identical ? "byte-identical" : "DIVERGED");
  }

  // -- Machine-readable trajectory ------------------------------------------
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"fork_cow_ns\": %.1f,\n"
                 "  \"fork_deep_ns\": %.1f,\n"
                 "  \"fork_speedup\": %.2f,\n"
                 "  \"solver_cache_hits\": %llu,\n"
                 "  \"solver_cache_misses\": %llu,\n"
                 "  \"solver_cache_hit_rate\": %.4f,\n"
                 "  \"solver_exact_hits\": %llu,\n"
                 "  \"solver_exact_hit_rate\": %.4f,\n"
                 "  \"solver_model_reuse_hits\": %llu,\n"
                 "  \"solver_model_reuse_hit_rate\": %.4f,\n"
                 "  \"solver_subsumption_hits\": %llu,\n"
                 "  \"solver_subsumption_hit_rate\": %.4f,\n"
                 "  \"intern_hits\": %llu,\n"
                 "  \"intern_nodes\": %llu,\n"
                 "  \"corpus_pairs\": %zu,\n"
                 "  \"serial_seconds\": %.4f,\n",
                 fork.cow_ns, fork.deep_ns, fork.speedup, cache_hits,
                 cache_misses, cache_rate, exact_hits, exact_rate,
                 reuse_hits, reuse_rate_solver, subsume_hits, subsume_rate,
                 intern_hits, intern_nodes, pairs.size(), serial_seconds);
    std::fprintf(out, "  \"pair_seconds\": [");
    for (std::size_t i = 0; i < pair_seconds.size(); ++i) {
      std::fprintf(out, "%s%.4f", i == 0 ? "" : ", ", pair_seconds[i]);
    }
    std::fprintf(out,
                 "],\n"
                 "  \"parallel_leg\": \"%s\",\n"
                 "  \"parallel_seconds\": %.4f,\n"
                 "  \"parallel_jobs\": %u,\n"
                 "  \"parallel_schedule\": \"longest-first\",\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"parallel_speedup\": %.3f,\n"
                 "  \"parallel_identical_to_serial\": %s,\n"
                 "  \"artifact_cache_cold_seconds\": %.4f,\n"
                 "  \"artifact_cache_warm_seconds\": %.4f,\n"
                 "  \"artifact_cold_hits\": %llu,\n"
                 "  \"artifact_warm_hits\": %llu,\n"
                 "  \"artifact_warm_misses\": %llu,\n"
                 "  \"artifact_reuse_rate\": %.4f,\n"
                 "  \"artifact_identical_to_baseline\": %s,\n"
                 "  \"artifact_shared_origin_baseline_seconds\": %.4f,\n"
                 "  \"artifact_shared_origin_warm_seconds\": %.4f,\n"
                 "  \"solver_backend\": \"propagate\",\n"
                 "  \"solver_backend_identical\": %s,\n"
                 "  \"pair3_baseline_seconds\": %.4f,\n"
                 "  \"pair3_optimized_seconds\": %.4f,\n"
                 "  \"pair3_speedup\": %.2f,\n"
                 "  \"pair3_identical\": %s,\n"
                 "  \"smoke\": %s\n"
                 "}\n",
                 run_parallel ? "ran" : "skipped (1 cpu)", parallel_seconds,
                 jobs, hw, speedup,
                 identical ? "true" : "false", cache_cold_seconds,
                 cache_warm_seconds,
                 static_cast<unsigned long long>(cold_stats.hits), warm_hits,
                 warm_misses, reuse_rate,
                 artifact_identical ? "true" : "false",
                 shared_baseline_seconds, shared_warm_seconds,
                 backend_identical ? "true" : "false",
                 pair3_baseline_seconds, pair3_optimized_seconds,
                 pair3_speedup, pair3_identical ? "true" : "false",
                 smoke ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  }

  // Hard gates: the COW fork must beat the eager copy by 5x and the
  // parallel run must agree with the serial one. Wall-clock speedup is
  // reported but not gated — it is a property of the host's core count.
  if (run_parallel && !identical) {
    std::printf("FAIL: parallel verification diverged from serial\n");
    return 1;
  }
  if (!backend_identical) {
    std::printf("FAIL: solver backends diverged on the corpus\n");
    return 1;
  }
  if (!pair3_identical) {
    std::printf("FAIL: pair-3 optimized report diverged from the "
                "baseline leg\n");
    return 1;
  }
  if (!artifact_identical) {
    std::printf("FAIL: artifact-cached verification diverged from the "
                "cache-off baseline\n");
    return 1;
  }
  if (cold_stats.hits == 0 || warm_hits == 0) {
    std::printf("FAIL: artifact store saw no reuse (cold %llu, warm %llu "
                "hits) — keys are unstable or phases stopped consulting "
                "the store\n",
                static_cast<unsigned long long>(cold_stats.hits), warm_hits);
    return 1;
  }
  if (!smoke && fork.speedup < 5.0) {
    std::printf("FAIL: fork speedup %.2fx below the 5x floor\n",
                fork.speedup);
    return 1;
  }
  return 0;
}
