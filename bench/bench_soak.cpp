// Soak bench: generation rate of the synthetic pair generator and
// sustained verification throughput of the chaos soak's in-process legs
// (batch, chains, serve daemon under a full fault schedule) at a corpus
// size the unit tests never reach.
//
//   bench_soak [--smoke] [--pairs N] [--seed N] [--out FILE]
//
// --pairs sets the corpus size (default 300 — the scale target from
// ROADMAP item 1; --smoke forces 48). Results land in FILE (default
// BENCH_soak.json).
//
// Hard gates (exit 1): any soak invariant violation, any label
// mismatch, or two same-seed generator manifests that are not
// byte-identical. The bench is the scale proof, not just a stopwatch.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/server.h"
#include "gen/generator.h"
#include "gen/soak.h"

using namespace octopocs;
using Clock = std::chrono::steady_clock;

namespace {

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string UniqueDir() {
  const std::string dir =
      "/tmp/octopocs_bench_soak_" +
      std::to_string(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now().time_since_epoch())
                         .count());
  return dir;
}

std::string Manifest(std::uint64_t seed, int pairs) {
  std::string out;
  for (const gen::GeneratedPair& g : gen::GenerateCorpus(seed, pairs)) {
    out += gen::DescribeGeneratedPair(g);
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef _WIN32
  std::printf("bench_soak: the soak harness requires POSIX; skipping\n");
  return 0;
#else
  bool smoke = false;
  int pairs = 300;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_soak.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--pairs") == 0 && i + 1 < argc) {
      pairs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  if (smoke) pairs = 48;
  if (pairs < 1) pairs = 1;

  // -- Generation rate + determinism gate -------------------------------------
  const auto gen_start = Clock::now();
  const std::string manifest_a = Manifest(seed, pairs);
  const double gen_seconds = SecondsSince(gen_start);
  const std::string manifest_b = Manifest(seed, pairs);
  const bool deterministic = manifest_a == manifest_b;
  const double gen_rate =
      gen_seconds > 0 ? static_cast<double>(pairs) / gen_seconds : 0;
  std::printf("gen:      %d pair(s) in %.3f s (%.1f pairs/s)  "
              "second run %s\n",
              pairs, gen_seconds, gen_rate,
              deterministic ? "byte-identical" : "DIVERGED");

  // -- In-process soak legs under chaos ---------------------------------------
  gen::SoakOptions options;
  options.seed = seed;
  options.pairs = pairs;
  options.jobs = 4;
  options.chaos = true;
  options.workdir = UniqueDir();
  // The bench binary is not the CLI, so the worker/daemon subprocess
  // legs (which spawn `octopocs`) stay with `octopocs soak`; the
  // in-process legs carry the scale measurement.
  options.run_isolated = false;
  options.run_resume = false;
  options.run_rlimit = false;
  options.run_daemon = false;
  std::string mkdir_cmd = "mkdir -p " + options.workdir;
  if (std::system(mkdir_cmd.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", options.workdir.c_str());
    return 1;
  }
  core::SetGenPairLoader(&gen::LoadGeneratedPair);

  const auto soak_start = Clock::now();
  const gen::SoakReport report = gen::RunSoak(options);
  const double soak_seconds = SecondsSince(soak_start);
  // Batch + serve both verify every pair; chains add their hop-2 runs.
  const int verified = 2 * pairs + report.chains_verified;
  const double soak_rate =
      soak_seconds > 0 ? static_cast<double>(verified) / soak_seconds : 0;
  std::printf("soak:     %d verification(s) in %.3f s (%.1f pairs/s)  "
              "%d label match(es)  %d chain(s)  %d fault(s) armed  "
              "%llu shed\n",
              verified, soak_seconds, soak_rate, report.label_matches,
              report.chains_verified, report.chaos_faults_armed,
              static_cast<unsigned long long>(report.server_sheds));
  for (const std::string& v : report.violations) {
    std::printf("violation: %s\n", v.c_str());
  }

  {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\n"
                  "  \"soak_pairs\": %d,\n"
                  "  \"soak_gen_pairs_per_s\": %.1f,\n"
                  "  \"soak_verify_pairs_per_s\": %.1f,\n"
                  "  \"soak_label_matches\": %d,\n"
                  "  \"soak_chains_verified\": %d,\n"
                  "  \"soak_violations\": %zu%s\n"
                  "}\n",
                  pairs, gen_rate, soak_rate, report.label_matches,
                  report.chains_verified, report.violations.size(),
                  smoke ? ",\n  \"soak_smoke\": true" : "");
    out << buf;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Hard gates: this is a correctness proof at scale, not a stopwatch.
  if (!deterministic) {
    std::printf("FAIL: same-seed manifests diverged\n");
    return 1;
  }
  if (!report.ok()) {
    std::printf("FAIL: %zu soak invariant violation(s)\n",
                report.violations.size());
    return 1;
  }
  if (report.label_matches != pairs) {
    std::printf("FAIL: %d/%d labels matched\n", report.label_matches, pairs);
    return 1;
  }
  return 0;
#endif
}
