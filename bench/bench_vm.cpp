// MiniVM dispatch bench: switch vs direct-threaded vs threaded+fused.
//
//   bench_vm [--smoke] [--out FILE]
//
// Three interpreter-bound workloads (an ALU-heavy decode loop, a
// memory-access loop, and a call-heavy loop) each run under the three
// backend configurations. For every workload the bench first proves
// byte-identity — ExecResult fields and a digest over the full observer
// event stream (instructions with coordinates and values, calls with
// arguments, block transfers, file reads) must match across all three
// configurations — then times observer-free runs and reports
// instructions/second. A per-opcode histogram (vm/trace.h) of the
// fused run shows where the retired instructions went.
//
// Emits BENCH_vm.json with the headline `vm_speedup`: threaded+fused vs
// switch on the dispatch-bound ALU workload — the cost the tentpole
// actually attacks. The memory- and call-bound loops are reported
// alongside (mem_speedup/call_speedup) as the Amdahl bound: their
// handler bodies (bounds checks, frame setup) cost the same under every
// backend, so their ratios show how much of each profile dispatch was.
// `threaded_identical_to_switch` is the hard identity bit the CI gate
// checks.
//
// Gates: identity is always fatal; vm_speedup below 3x is fatal outside
// --smoke.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "support/bytes.h"
#include "vm/asm.h"
#include "vm/fusion.h"
#include "vm/interp.h"
#include "vm/trace.h"

using namespace octopocs;
using Clock = std::chrono::steady_clock;

namespace {

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// FNV-1a digest over every observer event, in stream order. Two runs
/// with identical event streams (coordinates, opcodes, values,
/// arguments) produce identical digests; any reordering, omission, or
/// changed value diverges.
class EventDigest : public vm::ExecutionObserver {
 public:
  void OnInstr(vm::FuncId fn, vm::BlockId block, std::size_t ip,
               const vm::Instr& instr, std::uint64_t eff_addr,
               std::uint64_t value) override {
    Mix(1); Mix(fn); Mix(block); Mix(ip);
    Mix(static_cast<std::uint64_t>(instr.op));
    Mix(eff_addr); Mix(value);
    ++events_;
  }
  void OnCallEnter(vm::FuncId callee, std::span<const std::uint64_t> args,
                   const vm::Instr* call_site) override {
    Mix(2); Mix(callee);
    Mix(call_site == nullptr
            ? ~0ULL
            : static_cast<std::uint64_t>(call_site->op));
    for (const std::uint64_t a : args) Mix(a);
    ++events_;
  }
  void OnCallExit(vm::FuncId callee, std::uint64_t ret, bool returns_value,
                  vm::Reg callee_value_reg, vm::Reg caller_dest_reg) override {
    Mix(3); Mix(callee); Mix(ret); Mix(returns_value ? 1 : 0);
    Mix(callee_value_reg); Mix(caller_dest_reg);
    ++events_;
  }
  void OnFileRead(std::uint64_t dst_addr, std::uint64_t file_off,
                  std::uint64_t count) override {
    Mix(4); Mix(dst_addr); Mix(file_off); Mix(count);
    ++events_;
  }
  void OnBlockTransfer(vm::FuncId fn, vm::BlockId from,
                       vm::BlockId to) override {
    Mix(5); Mix(fn); Mix(from); Mix(to);
    ++events_;
  }
  void OnIndirectCall(vm::FuncId caller, vm::BlockId block, std::size_t ip,
                      vm::FuncId resolved) override {
    Mix(6); Mix(caller); Mix(block); Mix(ip); Mix(resolved);
    ++events_;
  }

  std::uint64_t digest() const { return h_; }
  std::uint64_t events() const { return events_; }

 private:
  void Mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (i * 8)) & 0xff;
      h_ *= 1099511628211ULL;
    }
  }
  std::uint64_t h_ = 1469598103934665603ULL;
  std::uint64_t events_ = 0;
};

struct Workload {
  const char* name;
  /// The headline workload (dispatch/fusion-bound).
  bool headline;
  /// Short-loop variant for the identity check (observer callbacks make
  /// event-per-instruction runs expensive) and the long-loop variant for
  /// observer-free timing. Same code shape, different trip count.
  vm::Program identity_program;
  vm::Program timed_program;
  Bytes input;
};

std::string Fmt1(std::uint64_t iters) { return std::to_string(iters); }

/// Decode/accumulate loop shaped like the formats parsers' hot paths:
/// movi+alu pairs, an addi, and a compare-branch back edge — the exact
/// shapes the peephole pass targets.
vm::Program AluProgram(std::uint64_t iters) {
  const std::string text =
      "program \"bench-alu\"\n"
      "func main()\n"
      "L0:\n"
      "  movi %r0, 0\n"
      "  movi %r1, " + Fmt1(iters) + "\n"
      "  movi %r2, 0\n"
      "  jmp L1\n"
      "L1:\n"
      "  movi %r3, 7\n"
      "  add %r2, %r2, %r3\n"
      "  movi %r4, 3\n"
      "  mul %r5, %r2, %r4\n"
      "  xor %r2, %r5, %r0\n"
      "  addi %r0, %r0, 1\n"
      "  cmpltu %r6, %r0, %r1\n"
      "  br %r6, L1, L2\n"
      "L2:\n"
      "  ret %r2\n";
  return vm::Assemble(text);
}

/// Field-extraction loop shaped like a parser reading a header word:
/// addi+load the word, mask/shift out two fields (movi+alu pairs), store
/// the recombined value, compare-branch back edge.
vm::Program MemProgram(std::uint64_t iters) {
  const std::string text =
      "program \"bench-mem\"\n"
      "func main()\n"
      "L0:\n"
      "  movi %r0, 256\n"
      "  alloc %r1, %r0\n"
      "  movi %r2, 0\n"
      "  movi %r3, " + Fmt1(iters) + "\n"
      "  jmp L1\n"
      "L1:\n"
      "  addi %r4, %r1, 8\n"
      "  load.4 %r5, %r4, 0\n"
      "  movi %r6, 255\n"
      "  and %r7, %r5, %r6\n"
      "  movi %r8, 8\n"
      "  shr %r9, %r5, %r8\n"
      "  add %r5, %r7, %r9\n"
      "  store.4 %r5, %r1, 8\n"
      "  addi %r2, %r2, 1\n"
      "  cmpltu %r10, %r2, %r3\n"
      "  br %r10, L1, L2\n"
      "L2:\n"
      "  ret %r2\n";
  return vm::Assemble(text);
}

/// Call-heavy loop: dispatch is a minor cost next to frame setup, so
/// this workload bounds how much the backends can differ off the fused
/// fast path. Reported, not part of the headline aggregate.
vm::Program CallProgram(std::uint64_t iters) {
  const std::string text =
      "program \"bench-call\"\n"
      "func leaf(r0)\n"
      "L0:\n"
      "  movi %r1, 2\n"
      "  mul %r2, %r0, %r1\n"
      "  ret %r2\n"
      "func main()\n"
      "L0:\n"
      "  movi %r0, 0\n"
      "  movi %r1, " + Fmt1(iters) + "\n"
      "  movi %r2, 0\n"
      "  jmp L1\n"
      "L1:\n"
      "  call %r3, leaf(%r0)\n"
      "  add %r2, %r2, %r3\n"
      "  addi %r0, %r0, 1\n"
      "  cmpltu %r4, %r0, %r1\n"
      "  br %r4, L1, L2\n"
      "L2:\n"
      "  ret %r2\n";
  return vm::Assemble(text);
}

/// A run that ends in a memory trap mid-loop — identity must also hold
/// for trap kind, fault address, message, backtrace, and instruction
/// count at the fault. Identity-only (too short to time).
vm::Program TrapProgram() {
  const std::string text =
      "program \"bench-trap\"\n"
      "func main()\n"
      "L0:\n"
      "  movi %r0, 8\n"
      "  alloc %r1, %r0\n"
      "  movi %r2, 0\n"
      "  jmp L1\n"
      "L1:\n"
      "  movi %r3, 9\n"
      "  add %r4, %r1, %r3\n"
      "  store.4 %r2, %r4, 0\n"
      "  addi %r2, %r2, 1\n"
      "  cmpltu %r5, %r2, %r0\n"
      "  br %r5, L1, L2\n"
      "L2:\n"
      "  ret %r2\n";
  return vm::Assemble(text);
}

vm::ExecOptions ExecFor(vm::DispatchMode mode, bool fuse) {
  vm::ExecOptions exec;
  exec.fuel = 1'000'000'000;
  exec.dispatch = mode;
  exec.fuse = fuse;
  return exec;
}

struct ObservedRun {
  vm::ExecResult result;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
};

ObservedRun RunObserved(const Workload& w, vm::DispatchMode mode, bool fuse) {
  EventDigest digest;
  vm::Interpreter interp(w.identity_program, ByteView(w.input),
                         ExecFor(mode, fuse));
  interp.AddObserver(&digest);
  ObservedRun run;
  run.result = interp.Run();
  run.digest = digest.digest();
  run.events = digest.events();
  return run;
}

bool SameResult(const vm::ExecResult& a, const vm::ExecResult& b) {
  if (a.trap != b.trap || a.return_value != b.return_value ||
      a.instructions != b.instructions || a.fault_addr != b.fault_addr ||
      a.trap_message != b.trap_message ||
      a.backtrace.size() != b.backtrace.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.backtrace.size(); ++i) {
    if (a.backtrace[i].fn != b.backtrace[i].fn ||
        a.backtrace[i].block != b.backtrace[i].block ||
        a.backtrace[i].ip != b.backtrace[i].ip) {
      return false;
    }
  }
  return true;
}

struct Throughput {
  double switch_ips = 0;
  double threaded_ips = 0;
  double fused_ips = 0;
};

double OneTimedRun(const Workload& w, vm::DispatchMode mode, bool fuse) {
  vm::Interpreter interp(w.timed_program, ByteView(w.input),
                         ExecFor(mode, fuse));
  const auto start = Clock::now();
  const vm::ExecResult result = interp.Run();
  const double seconds = SecondsSince(start);
  if (seconds <= 0) return 0;
  return static_cast<double>(result.instructions) / seconds;
}

/// Observer-free instructions/second, best of `reps` rounds. Each round
/// times the three configurations back-to-back (interleaved rounds, not
/// per-config batches) so a noisy neighbour or frequency drift hits all
/// three roughly equally instead of skewing one side of the ratio.
Throughput MeasureWorkload(const Workload& w, int reps) {
  Throughput best;
  for (int r = 0; r < reps; ++r) {
    best.switch_ips = std::max(
        best.switch_ips, OneTimedRun(w, vm::DispatchMode::kSwitch, false));
    best.threaded_ips = std::max(
        best.threaded_ips, OneTimedRun(w, vm::DispatchMode::kThreaded, false));
    best.fused_ips = std::max(
        best.fused_ips, OneTimedRun(w, vm::DispatchMode::kThreaded, true));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_vm.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const std::uint64_t id_iters = smoke ? 20'000 : 50'000;
  const std::uint64_t timed_iters = smoke ? 50'000 : 3'000'000;
  const int reps = smoke ? 1 : 5;

  std::vector<Workload> workloads;
  workloads.push_back(
      {"alu", true, AluProgram(id_iters), AluProgram(timed_iters), {}});
  workloads.push_back(
      {"mem", false, MemProgram(id_iters), MemProgram(timed_iters), {}});
  workloads.push_back({"call", false, CallProgram(id_iters / 4),
                       CallProgram(timed_iters / 4), {}});
  workloads.push_back({"trap", false, TrapProgram(), TrapProgram(), {}});

  std::printf("=== MiniVM dispatch (switch vs threaded vs fused) ===\n\n");

  // -- Identity: all three configurations, full observer streams ------------
  bool all_identical = true;
  for (const Workload& w : workloads) {
    const ObservedRun sw = RunObserved(w, vm::DispatchMode::kSwitch, false);
    const ObservedRun th = RunObserved(w, vm::DispatchMode::kThreaded, false);
    const ObservedRun fu = RunObserved(w, vm::DispatchMode::kThreaded, true);
    const bool same = SameResult(sw.result, th.result) &&
                      SameResult(sw.result, fu.result) &&
                      sw.digest == th.digest && sw.digest == fu.digest &&
                      sw.events == th.events && sw.events == fu.events;
    std::printf("identity %-5s %s (%" PRIu64 " events, trap=%s, %" PRIu64
                " instructions)\n",
                w.name, same ? "ok      " : "DIVERGED", sw.events,
                vm::TrapName(sw.result.trap).data(), sw.result.instructions);
    all_identical = all_identical && same;
  }
  std::printf("\n");

  // -- Throughput: observer-free, best of reps ------------------------------
  bench::TextTable table({"workload", "switch Mi/s", "threaded Mi/s",
                          "fused Mi/s", "fused/switch"});
  double vm_speedup = 0, threaded_speedup = 0;
  double headline_switch_ips = 0, headline_threaded_ips = 0;
  double headline_fused_ips = 0;
  double mem_speedup = 0, call_speedup = 0;
  for (const Workload& w : workloads) {
    if (w.name == std::string("trap")) continue;  // too short to time
    const Throughput t = MeasureWorkload(w, reps);
    const double sw = t.switch_ips, th = t.threaded_ips, fu = t.fused_ips;
    const double ratio = sw > 0 ? fu / sw : 0;
    table.AddRow({w.name, bench::Fmt("%.1f", sw / 1e6),
                  bench::Fmt("%.1f", th / 1e6), bench::Fmt("%.1f", fu / 1e6),
                  bench::Fmt("%.2fx", ratio)});
    if (w.headline) {
      vm_speedup = ratio;
      threaded_speedup = sw > 0 ? th / sw : 0;
      headline_switch_ips = sw;
      headline_threaded_ips = th;
      headline_fused_ips = fu;
    } else if (w.name == std::string("mem")) {
      mem_speedup = ratio;
    } else {
      call_speedup = ratio;
    }
  }
  table.Print();

  std::printf("\nheadline (dispatch-bound alu): threaded %.2fx | "
              "threaded+fused %.2fx vs switch\n"
              "amdahl bounds: memory-bound %.2fx | call-bound %.2fx\n",
              threaded_speedup, vm_speedup, mem_speedup, call_speedup);

  // -- Fusion coverage + per-opcode histogram -------------------------------
  const vm::DecodedProgram decoded =
      vm::DecodeProgram(workloads[0].identity_program, /*fuse=*/true);
  std::printf("fusion (alu): %" PRIu64 " pair(s), %" PRIu64 " triple(s), %"
              PRIu64 " single(s)\n",
              decoded.stats.pairs, decoded.stats.triples,
              decoded.stats.singles);

  vm::OpcodeHistogram hist;
  {
    vm::Interpreter interp(workloads[0].identity_program,
                           ByteView(workloads[0].input),
                           ExecFor(vm::DispatchMode::kThreaded, true));
    interp.AddObserver(&hist);
    interp.Run();
  }
  std::printf("top opcodes (alu, fused run):");
  std::size_t shown = 0;
  for (const auto& [op, count] : hist.Sorted()) {
    if (++shown > 6) break;
    std::printf(" %s=%" PRIu64, vm::OpName(op).data(), count);
  }
  std::printf(" (total %" PRIu64 ")\n\n", hist.total());

  // -- Machine-readable ------------------------------------------------------
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"threaded_identical_to_switch\": %s,\n"
                 "  \"vm_speedup\": %.3f,\n"
                 "  \"threaded_speedup\": %.3f,\n"
                 "  \"mem_speedup\": %.3f,\n"
                 "  \"call_speedup\": %.3f,\n"
                 "  \"headline_switch_ips\": %.0f,\n"
                 "  \"headline_threaded_ips\": %.0f,\n"
                 "  \"headline_fused_ips\": %.0f,\n"
                 "  \"fusion_pairs\": %" PRIu64 ",\n"
                 "  \"fusion_triples\": %" PRIu64 ",\n"
                 "  \"fusion_singles\": %" PRIu64 ",\n"
                 "  \"dispatch_table_size\": %zu,\n"
                 "  \"smoke\": %s\n"
                 "}\n",
                 all_identical ? "true" : "false", vm_speedup,
                 threaded_speedup, mem_speedup, call_speedup,
                 headline_switch_ips,
                 headline_threaded_ips, headline_fused_ips,
                 decoded.stats.pairs, decoded.stats.triples,
                 decoded.stats.singles, vm::ThreadedDispatchTableSize(),
                 smoke ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  }

  // -- Gates -----------------------------------------------------------------
  if (!all_identical) {
    std::printf("FAIL: threaded/fused execution diverged from the switch "
                "backend\n");
    return 1;
  }
  if (!smoke && vm_speedup < 3.0) {
    std::printf("FAIL: vm speedup %.2fx below the 3x floor\n", vm_speedup);
    return 1;
  }
  return 0;
}
