// Table IV reproduction: directed vs naive symbolic execution.
//
// Paper reference: reaching ep with naive symbolic execution works only
// on the small opj_dump target (3.49 s / 461 MB there) and dies with
// MemError on MuPDF and gif2png; directed symbolic execution reaches ep
// on all three. Absolute numbers differ (our substrate is MiniVM, their
// testbed ran angr on real binaries); the *shape* — who finishes, who
// exhausts memory, and the relative ordering of costs — is the claim.
#include <cstdio>

#include "bench_util.h"
#include "cfg/cfg.h"
#include "corpus/pairs.h"
#include "symex/executor.h"

using namespace octopocs;

namespace {

struct Row {
  int pair_idx;
  const char* ep;
};

std::string MemStr(const symex::SymexResult& r) {
  if (r.status == symex::SymexStatus::kBudget) return "MemError";
  return bench::Fmt("%.2f", double(r.stats.peak_memory_bytes) / 1e6) + " MB";
}

std::string TimeStr(const symex::SymexResult& r, bool reached) {
  if (!reached) return "N/A";
  return bench::Fmt("%.4f", r.stats.elapsed_seconds);
}

}  // namespace

int main() {
  std::printf("=== Table IV: directed vs naive symbolic execution ===\n");
  std::printf(
      "(paper: naive hits MemError on MuPDF and gif2png; directed "
      "reaches ep on all three)\n\n");

  const Row rows[] = {{7, "mj2k_decode"},     // ghostscript → opj_dump
                      {8, "mj2k_decode"},     // opj_dump → MuPDF
                      {9, "gif_read_image"}}; // gif2png → gif2png (arti.)

  bench::TextTable table({"S", "T", "SE time", "SE states", "SE mem",
                          "D-SE time", "D-SE states", "D-SE mem"});

  bool shape_ok = true;
  for (const Row& row : rows) {
    const corpus::Pair pair = corpus::BuildPair(row.pair_idx);
    const cfg::Cfg graph = cfg::Cfg::Build(pair.t);
    const vm::FuncId ep = pair.t.FindFunction(row.ep);

    symex::ExecutorOptions opts;
    // The "machine" the naive baseline runs out of: a few thousand live
    // states, the scaled analog of the paper's 32 GB box.
    opts.max_live_states = 1024;
    opts.max_memory_bytes = 256ull << 20;

    symex::SymExecutor executor(pair.t, graph, ep, opts);
    const symex::SymexResult naive = executor.ReachEp(/*directed=*/false);
    const symex::SymexResult directed = executor.ReachEp(/*directed=*/true);

    const bool naive_ok = naive.status == symex::SymexStatus::kReachedEp;
    const bool directed_ok =
        directed.status == symex::SymexStatus::kReachedEp;

    // Paper shape: naive succeeds only on the opj_dump row.
    if (directed_ok != true) shape_ok = false;
    if ((row.pair_idx == 7) != naive_ok) shape_ok = false;

    table.AddRow({pair.s_name, pair.t_name, TimeStr(naive, naive_ok),
                  bench::FmtU(naive.stats.states_created), MemStr(naive),
                  TimeStr(directed, directed_ok),
                  bench::FmtU(directed.stats.states_created),
                  MemStr(directed)});
  }
  table.Print();
  std::printf("\nShape matches the paper: %s\n", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
