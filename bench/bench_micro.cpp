// Micro-benchmarks (google-benchmark): substrate costs underneath the
// pipeline — interpreter throughput, taint-tracking overhead, solver
// latency, CFG construction, and the per-phase costs on a real pair.
#include <benchmark/benchmark.h>

#include "cfg/cfg.h"
#include "core/octopocs.h"
#include "corpus/pairs.h"
#include "formats/formats.h"
#include "symex/executor.h"
#include "symex/solver.h"
#include "taint/crash_primitive.h"
#include "taint/taint_engine.h"
#include "vm/asm.h"
#include "vm/interp.h"

using namespace octopocs;

namespace {

// A busy little program: tight loop summing file bytes.
const vm::Program& LoopProgram() {
  static const vm::Program p = vm::Assemble(R"(
    func main()
      movi %n, 64
      alloc %buf, %n
      read %got, %buf, %n
      movi %i, 0
      movi %sum, 0
    loop:
      cmpltu %more, %i, %got
      br %more, body, done
    body:
      add %p, %buf, %i
      load.1 %c, %p, 0
      add %sum, %sum, %c
      addi %i, %i, 1
      jmp loop
    done:
      ret %sum
  )");
  return p;
}

void BM_InterpreterThroughput(benchmark::State& state) {
  const vm::Program& p = LoopProgram();
  const Bytes input(64, 7);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const auto r = vm::RunProgram(p, input);
    instructions += r.instructions;
    benchmark::DoNotOptimize(r.return_value);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput);

void BM_TaintTrackingOverhead(benchmark::State& state) {
  const vm::Program& p = LoopProgram();
  const Bytes input(64, 7);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    taint::TaintEngine engine(p);
    vm::Interpreter interp(p, input);
    interp.AddObserver(&engine);
    const auto r = interp.Run();
    instructions += r.instructions;
    benchmark::DoNotOptimize(r.return_value);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TaintTrackingOverhead);

void BM_CrashPrimitiveExtraction(benchmark::State& state) {
  const corpus::Pair pair = corpus::BuildPair(1);
  const vm::FuncId ep = pair.s.FindFunction("mjpg_decode");
  for (auto _ : state) {
    const auto r = taint::ExtractCrashPrimitives(pair.s, pair.poc, ep);
    benchmark::DoNotOptimize(r.bunches.size());
  }
}
BENCHMARK(BM_CrashPrimitiveExtraction);

void BM_SolverMagicEquality(benchmark::State& state) {
  for (auto _ : state) {
    symex::ByteSolver solver;
    auto field = symex::MakeInput(0);
    for (unsigned i = 1; i < 4; ++i) {
      field = symex::MakeBinOp(
          vm::Op::kOr, field,
          symex::MakeBinOp(vm::Op::kShl, symex::MakeInput(i),
                           symex::MakeConst(8 * i)));
    }
    solver.AddEq(field, 0x4650444D);
    const auto r = solver.Solve();
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_SolverMagicEquality);

void BM_SolverUnsatProof(benchmark::State& state) {
  for (auto _ : state) {
    symex::ByteSolver solver;
    const auto len = symex::MakeBinOp(
        vm::Op::kOr, symex::MakeInput(0),
        symex::MakeBinOp(vm::Op::kShl, symex::MakeInput(1),
                         symex::MakeConst(8)));
    solver.AddEq(len, 0x100);
    solver.Add(symex::MakeBinOp(vm::Op::kCmpLtU, len,
                                symex::MakeConst(65)));
    const auto r = solver.Solve();
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_SolverUnsatProof);

void BM_CfgConstruction(benchmark::State& state) {
  const corpus::Pair pair = corpus::BuildPair(8);
  for (auto _ : state) {
    const cfg::Cfg graph = cfg::Cfg::Build(pair.t);
    benchmark::DoNotOptimize(graph.dynamic_edge_count());
  }
}
BENCHMARK(BM_CfgConstruction);

void BM_BackwardReachability(benchmark::State& state) {
  const corpus::Pair pair = corpus::BuildPair(8);
  const cfg::Cfg graph = cfg::Cfg::Build(pair.t);
  const vm::FuncId ep = pair.t.FindFunction("mj2k_decode");
  for (auto _ : state) {
    const auto map = graph.BackwardReachability(ep);
    benchmark::DoNotOptimize(map.EntryReaches());
  }
}
BENCHMARK(BM_BackwardReachability);

void BM_DirectedSymexToEp(benchmark::State& state) {
  const corpus::Pair pair = corpus::BuildPair(8);
  const cfg::Cfg graph = cfg::Cfg::Build(pair.t);
  const vm::FuncId ep = pair.t.FindFunction("mj2k_decode");
  for (auto _ : state) {
    symex::SymExecutor executor(pair.t, graph, ep);
    const auto r = executor.ReachEp(/*directed=*/true);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_DirectedSymexToEp);

void BM_FullPipelinePair(benchmark::State& state) {
  const corpus::Pair pair = corpus::BuildPair(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::PipelineOptions opts;
    opts.verify_exec.fuel = 2'000'000;
    const auto report = core::VerifyPair(pair, opts);
    benchmark::DoNotOptimize(report.verdict);
  }
}
BENCHMARK(BM_FullPipelinePair)->Arg(1)->Arg(8)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
