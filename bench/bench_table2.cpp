// Table II reproduction: vulnerability verification results of OCTOPOCS
// over all 15 corpus pairs.
//
// Paper reference (DSN'21, Table II): 6 Type-I, 3 Type-II, 5 Type-III,
// 1 Failure — 14 of 15 pairs verified. Columns mirror the paper: the
// pair, the modelled vulnerability, whether poc' was generated, and the
// verification outcome.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "core/octopocs.h"
#include "core/parallel_verify.h"

using namespace octopocs;

int main(int argc, char** argv) {
  unsigned jobs = 1;
  // Optional per-pair wall-clock bound: keeps a pathological pair from
  // stalling a CI run of the bench; over-budget pairs show as Failure.
  std::uint64_t pair_deadline_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--pair-deadline-ms") == 0 &&
               i + 1 < argc) {
      pair_deadline_ms = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    }
  }

  std::printf("=== Table II: vulnerability verification results ===\n");
  std::printf("(paper: 14/15 verified; Idx-15 fails on the CFG defect)\n\n");

  bench::TextTable table({"Idx", "S", "T", "Vuln", "CWE", "poc'",
                          "Verification", "Type", "Time(s)"});

  core::PipelineOptions opts;
  opts.verify_exec.fuel = 2'000'000;  // generous hang detector
  const std::vector<corpus::Pair> pairs = corpus::BuildCorpus();
  const auto start = std::chrono::steady_clock::now();
  const auto reports = core::VerifyCorpus(pairs, opts, jobs, pair_deadline_ms);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  int verified = 0, triggered = 0, not_triggerable = 0, failures = 0;
  int type_matches = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const corpus::Pair& pair = pairs[i];
    const core::VerificationReport& report = reports[i];

    const bool ok = report.verdict != core::Verdict::kFailure;
    if (ok) ++verified;
    switch (report.verdict) {
      case core::Verdict::kTriggered: ++triggered; break;
      case core::Verdict::kNotTriggerable: ++not_triggerable; break;
      case core::Verdict::kFailure: ++failures; break;
    }
    if (std::string(core::ResultTypeName(report.type)) ==
        std::string(corpus::ExpectedResultName(pair.expected))) {
      ++type_matches;
    }

    table.AddRow({std::to_string(pair.idx),
                  pair.s_name + " " + pair.s_version,
                  pair.t_name + " " + pair.t_version, pair.vuln_id,
                  pair.cwe, report.poc_generated ? "O" : "X",
                  ok ? "O" : "X",
                  std::string(core::ResultTypeName(report.type)),
                  bench::Fmt("%.3f", report.timings.total_seconds)});
  }
  table.Print();

  std::printf(
      "\nSummary: %d/15 verified (paper: 14/15) | Triggered: %d "
      "(paper: 9) | NotTriggerable: %d (paper: 5) | Failure: %d "
      "(paper: 1)\n",
      verified, triggered, not_triggerable, failures);
  std::printf("Result types matching Table II: %d/15\n", type_matches);
  std::printf("Wall clock: %.3f s with %u job(s)\n", wall, jobs);
  return type_matches == 15 ? 0 : 1;
}
