// Table II reproduction: vulnerability verification results of OCTOPOCS
// over all 15 corpus pairs.
//
// Paper reference (DSN'21, Table II): 6 Type-I, 3 Type-II, 5 Type-III,
// 1 Failure — 14 of 15 pairs verified. Columns mirror the paper: the
// pair, the modelled vulnerability, whether poc' was generated, and the
// verification outcome.
#include <cstdio>

#include "bench_util.h"
#include "core/octopocs.h"

using namespace octopocs;

int main() {
  std::printf("=== Table II: vulnerability verification results ===\n");
  std::printf("(paper: 14/15 verified; Idx-15 fails on the CFG defect)\n\n");

  bench::TextTable table({"Idx", "S", "T", "Vuln", "CWE", "poc'",
                          "Verification", "Type", "Time(s)"});

  int verified = 0, triggered = 0, not_triggerable = 0, failures = 0;
  int type_matches = 0;
  for (const corpus::Pair& pair : corpus::BuildCorpus()) {
    core::PipelineOptions opts;
    opts.verify_exec.fuel = 2'000'000;  // generous hang detector
    const core::VerificationReport report = core::VerifyPair(pair, opts);

    const bool ok = report.verdict != core::Verdict::kFailure;
    if (ok) ++verified;
    switch (report.verdict) {
      case core::Verdict::kTriggered: ++triggered; break;
      case core::Verdict::kNotTriggerable: ++not_triggerable; break;
      case core::Verdict::kFailure: ++failures; break;
    }
    if (std::string(core::ResultTypeName(report.type)) ==
        std::string(corpus::ExpectedResultName(pair.expected))) {
      ++type_matches;
    }

    table.AddRow({std::to_string(pair.idx),
                  pair.s_name + " " + pair.s_version,
                  pair.t_name + " " + pair.t_version, pair.vuln_id,
                  pair.cwe, report.poc_generated ? "O" : "X",
                  ok ? "O" : "X",
                  std::string(core::ResultTypeName(report.type)),
                  bench::Fmt("%.3f", report.timings.total_seconds)});
  }
  table.Print();

  std::printf(
      "\nSummary: %d/15 verified (paper: 14/15) | Triggered: %d "
      "(paper: 9) | NotTriggerable: %d (paper: 5) | Failure: %d "
      "(paper: 1)\n",
      verified, triggered, not_triggerable, failures);
  std::printf("Result types matching Table II: %d/15\n", type_matches);
  return type_matches == 15 ? 0 : 1;
}
