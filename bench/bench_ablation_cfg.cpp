// Ablation B: CFG construction mode (paper §IV-B prefers the dynamic
// CFG; §V-B attributes the one Failure row to an angr CFG bug).
//
// Three configurations over Idx-15 (the obfuscated-dispatch target) and
// a static-vs-dynamic comparison over the triggerable pairs:
//  - dynamic CFG with the simulated angr defect (the paper's setup):
//    Idx-15 fails with a CFG error;
//  - dynamic CFG with the defect "fixed" (resolve_obfuscated_icalls):
//    Idx-15 verifies — the paper's "if this bug is resolved" claim;
//  - static CFG only: indirect-call edges are missing, so Idx-15's ep
//    appears unreachable and the verdict degrades.
#include <cstdio>

#include "bench_util.h"
#include "core/octopocs.h"

using namespace octopocs;

namespace {

core::VerificationReport RunWith(const corpus::Pair& pair, bool dynamic,
                                 bool fixed) {
  core::PipelineOptions opts;
  opts.verify_exec.fuel = 2'000'000;
  opts.cfg.use_dynamic = dynamic;
  opts.cfg.resolve_obfuscated_icalls = fixed;
  return core::VerifyPair(pair, opts);
}

}  // namespace

int main() {
  std::printf("=== Ablation B: CFG construction mode ===\n\n");

  const corpus::Pair idx15 = corpus::BuildPair(15);
  bench::TextTable t15({"configuration", "Idx-15 verdict", "detail"});

  const auto buggy = RunWith(idx15, /*dynamic=*/true, /*fixed=*/false);
  t15.AddRow({"dynamic CFG (simulated angr defect)",
              std::string(core::VerdictName(buggy.verdict)),
              buggy.detail.substr(0, 60)});
  const auto fixed = RunWith(idx15, /*dynamic=*/true, /*fixed=*/true);
  t15.AddRow({"dynamic CFG + upstream fix",
              std::string(core::VerdictName(fixed.verdict)),
              fixed.poc_generated ? "poc' generated and crashed T"
                                  : fixed.detail.substr(0, 60)});
  const auto stat = RunWith(idx15, /*dynamic=*/false, /*fixed=*/false);
  t15.AddRow({"static CFG only",
              std::string(core::VerdictName(stat.verdict)),
              stat.detail.substr(0, 60)});
  t15.Print();

  // Static CFG suffices for the direct-call pairs — the reason the
  // paper keeps it as a fallback option.
  std::printf("\nStatic-CFG verification across the triggerable pairs:\n\n");
  bench::TextTable tall({"Idx", "dynamic CFG", "static CFG"});
  bool static_matches_direct_call_pairs = true;
  for (int idx = 1; idx <= 9; ++idx) {
    const corpus::Pair pair = corpus::BuildPair(idx);
    const auto dyn = RunWith(pair, true, false);
    const auto sta = RunWith(pair, false, false);
    if (sta.verdict != core::Verdict::kTriggered) {
      static_matches_direct_call_pairs = false;
    }
    tall.AddRow({std::to_string(idx),
                 std::string(core::VerdictName(dyn.verdict)),
                 std::string(core::VerdictName(sta.verdict))});
  }
  tall.Print();

  const bool shape_ok = buggy.verdict == core::Verdict::kFailure &&
                        fixed.verdict == core::Verdict::kTriggered &&
                        stat.verdict != core::Verdict::kTriggered &&
                        static_matches_direct_call_pairs;
  std::printf("\nShape matches the paper's claims: %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
