// Table III reproduction: effectiveness of context-aware taint analysis.
//
// Paper reference: plain taint (no context) fails to produce a working
// poc' on 3 of the 9 triggered pairs — exactly the pairs whose crash
// needs multiple ep encounters (pdftops, avconv→ffmpeg, gif2png) —
// while context-aware taint succeeds on all 9.
#include <cstdio>

#include "bench_util.h"
#include "core/octopocs.h"

using namespace octopocs;

namespace {

bool Verifies(const corpus::Pair& pair, bool context_aware) {
  core::PipelineOptions opts;
  opts.verify_exec.fuel = 2'000'000;
  opts.taint.context_aware = context_aware;
  return core::VerifyPair(pair, opts).verdict == core::Verdict::kTriggered;
}

}  // namespace

int main() {
  std::printf("=== Table III: effectiveness of context-aware taint ===\n");
  std::printf("(paper: context-free fails on Idx 3, 4, 9)\n\n");

  bench::TextTable table(
      {"Idx", "S", "T", "Taint (no context)", "Context-aware"});

  int plain_ok = 0, aware_ok = 0;
  bool expected_shape = true;
  for (int idx = 1; idx <= 9; ++idx) {
    const corpus::Pair pair = corpus::BuildPair(idx);
    const bool plain = Verifies(pair, /*context_aware=*/false);
    const bool aware = Verifies(pair, /*context_aware=*/true);
    plain_ok += plain;
    aware_ok += aware;
    const bool paper_plain = !(idx == 3 || idx == 4 || idx == 9);
    if (plain != paper_plain || !aware) expected_shape = false;
    table.AddRow({std::to_string(idx), pair.s_name, pair.t_name,
                  plain ? "O" : "X", aware ? "O" : "X"});
  }
  table.Print();

  std::printf(
      "\nSummary: context-free verified %d/9 (paper: 6/9), "
      "context-aware %d/9 (paper: 9/9)\n",
      plain_ok, aware_ok);
  std::printf("Shape matches the paper: %s\n",
              expected_shape ? "yes" : "NO");
  return expected_shape ? 0 : 1;
}
