// Ablation A: the loop-iteration cap θ (paper §IV-B sets θ = 120).
//
// Sweeps θ and reports, per value, how many of the nine triggerable
// pairs still verify. The paper argues most loops exit well before 120
// iterations; the sweep shows the success count saturating long before
// the paper's setting, and that the setting is safe (no pair needs
// more).
#include <cstdio>

#include "bench_util.h"
#include "core/octopocs.h"

using namespace octopocs;

int main() {
  std::printf("=== Ablation A: loop cap θ sweep (paper default: 120) ===\n\n");

  bench::TextTable table({"theta", "verified (of 9)", "wrong verdicts"});

  const int thetas[] = {1, 2, 4, 8, 16, 120, 480};
  bool saturated_at_default = false;
  for (const int theta : thetas) {
    int verified = 0, wrong = 0;
    for (int idx = 1; idx <= 9; ++idx) {
      const corpus::Pair pair = corpus::BuildPair(idx);
      core::PipelineOptions opts;
      opts.verify_exec.fuel = 2'000'000;
      opts.symex.theta = static_cast<std::uint32_t>(theta);
      const auto report = core::VerifyPair(pair, opts);
      if (report.verdict == core::Verdict::kTriggered) {
        ++verified;
      } else if (report.verdict == core::Verdict::kNotTriggerable) {
        // A too-small θ can misreport a triggerable pair as safe — the
        // dangerous failure mode the paper's limitation section warns
        // about.
        ++wrong;
      }
    }
    if (theta == 120 && verified == 9) saturated_at_default = true;
    table.AddRow({std::to_string(theta), std::to_string(verified),
                  std::to_string(wrong)});
  }
  table.Print();
  std::printf("\nθ = 120 verifies all nine triggerable pairs: %s\n",
              saturated_at_default ? "yes" : "NO");
  return saturated_at_default ? 0 : 1;
}
