// Serve-mode bench: sustained request throughput and latency against an
// in-process `octopocs serve` daemon, cold (fresh artifact cache) and
// warm (daemon restarted on the populated cache), plus an overload leg
// that drives a deliberately tiny queue past saturation to show
// bounded latency with explicit sheds instead of collapse.
//
//   bench_serve [--smoke] [--passes N] [--out FILE]
//
// --passes sets how many times the warm leg replays the 15-pair corpus
// (default 20, --smoke forces 3). Results are merged into FILE
// (default BENCH_perf.json): existing non-serve fields are preserved,
// previous serve_* fields are replaced.
//
// Three measurements:
//   cold        one pass over the 15 corpus pairs against an empty
//               on-disk cache — every request runs the full pipeline
//               and persists its report. p50/p99 per-request latency
//               and requests/sec.
//   warm        the daemon is torn down and restarted on the same
//               cache directory (the crash-recovery path), then
//               replays the corpus N times — every request must be a
//               disk hit. Sustained requests/sec and p50/p99.
//   overload    workers=1, queue_depth=2, and bursts of concurrent
//               clients requesting the slowest pair. The queue bound
//               keeps served-request latency flat; the surplus is
//               answered RETRY_AFTER immediately. Every request in the
//               burst gets an answer — shed or served, never hung.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/server.h"

using namespace octopocs;
using Clock = std::chrono::steady_clock;

namespace {

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double PercentileMs(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = pct / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (samples[lo] * (1 - frac) + samples[hi] * frac) * 1000.0;
}

std::string UniqueSuffix() {
  return std::to_string(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Replaces the serve_* fields inside an existing flat JSON object
/// (BENCH_perf.json as written by bench_perf) without disturbing the
/// other fields; writes a fresh object when the file does not exist.
bool MergeServeFields(const std::string& path, const std::string& fields) {
  std::string body;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      body = ss.str();
    }
  }
  std::string kept;
  if (!body.empty()) {
    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("\"serve_") != std::string::npos) continue;
      if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
      if (line.find_first_of('}') != std::string::npos &&
          line.find_first_not_of(" }\r") == std::string::npos) {
        continue;  // the closing brace; re-added below
      }
      kept += line;
      kept += '\n';
    }
    // The now-last field line needs a trailing comma before our block.
    const std::size_t last = kept.find_last_not_of(" \t\r\n");
    if (last != std::string::npos && kept[last] != '{' && kept[last] != ',') {
      kept = kept.substr(0, last + 1) + "," + kept.substr(last + 1);
    }
  }
  if (kept.empty()) kept = "{\n";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << kept << fields << "}\n";
  return true;
}

struct LegResult {
  double seconds = 0;
  double rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t requests = 0;
};

/// One sequential pass-set over the corpus against a running server.
LegResult DriveCorpus(const std::string& socket_path, int passes,
                      bool* all_ok) {
  LegResult leg;
  std::vector<double> latencies;
  const auto start = Clock::now();
  for (int pass = 0; pass < passes; ++pass) {
    for (int idx = 1; idx <= 15; ++idx) {
      core::ServeRequest request;
      request.pair = idx;
      const auto t0 = Clock::now();
      const core::ClientResult result = core::SendRequest(socket_path, request);
      latencies.push_back(SecondsSince(t0));
      if (!result.ok) {
        std::fprintf(stderr, "request pair %d failed: %s %s\n", idx,
                     result.error.code.c_str(),
                     result.transport_error.c_str());
        *all_ok = false;
      }
    }
  }
  leg.seconds = SecondsSince(start);
  leg.requests = latencies.size();
  leg.rps = leg.seconds > 0
                ? static_cast<double>(leg.requests) / leg.seconds
                : 0;
  leg.p50_ms = PercentileMs(latencies, 50);
  leg.p99_ms = PercentileMs(latencies, 99);
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef _WIN32
  std::printf("bench_serve: the serve daemon requires POSIX; skipping\n");
  return 0;
#else
  bool smoke = false;
  int passes = 20;
  std::string out_path = "BENCH_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--passes") == 0 && i + 1 < argc) {
      passes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  if (smoke) passes = 3;
  if (passes < 1) passes = 1;

  const std::string suffix = UniqueSuffix();
  const std::string socket_path = "/tmp/octopocs_bench_" + suffix + ".sock";
  const std::string cache_dir = "/tmp/octopocs_bench_cache_" + suffix;
  bool all_ok = true;

  // -- Cold: fresh cache, every request runs the pipeline -------------------
  LegResult cold;
  {
    core::ServeOptions options;
    options.socket_path = socket_path;
    options.workers = 2;
    options.queue_depth = 32;
    options.cache_dir = cache_dir;
    core::Server server(options);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "cold server failed to start: %s\n", error.c_str());
      return 1;
    }
    cold = DriveCorpus(socket_path, 1, &all_ok);
    server.Drain();
    const core::ServeStats stats = server.stats();
    std::printf("cold:     %llu req in %.3f s (%.1f req/s)  p50 %.2f ms  "
                "p99 %.2f ms  (%llu persisted)\n",
                static_cast<unsigned long long>(cold.requests), cold.seconds,
                cold.rps, cold.p50_ms, cold.p99_ms,
                static_cast<unsigned long long>(stats.disk_stores));
  }

  // -- Warm: daemon restarted on the populated cache ------------------------
  LegResult warm;
  std::uint64_t warm_disk_hits = 0;
  std::uint64_t warm_loaded = 0;
  {
    core::ServeOptions options;
    options.socket_path = socket_path;
    options.workers = 2;
    options.queue_depth = 32;
    options.cache_dir = cache_dir;
    core::Server server(options);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "warm server failed to start: %s\n", error.c_str());
      return 1;
    }
    warm_loaded = server.disk_store()->stats().loaded_records;
    warm = DriveCorpus(socket_path, passes, &all_ok);
    server.Drain();
    warm_disk_hits = server.stats().disk_hits;
    std::printf("warm:     %llu req in %.3f s (%.1f req/s)  p50 %.2f ms  "
                "p99 %.2f ms  (%llu loaded, %llu disk hits)\n",
                static_cast<unsigned long long>(warm.requests), warm.seconds,
                warm.rps, warm.p50_ms, warm.p99_ms,
                static_cast<unsigned long long>(warm_loaded),
                static_cast<unsigned long long>(warm_disk_hits));
  }

  // -- Overload: tiny queue, concurrent burst, explicit sheds ---------------
  std::uint64_t burst_served = 0, burst_shed = 0, burst_unanswered = 0;
  double overload_p99_ms = 0;
  {
    const std::string overload_socket =
        "/tmp/octopocs_bench_ov_" + suffix + ".sock";
    core::ServeOptions options;
    options.socket_path = overload_socket;
    options.workers = 1;
    options.queue_depth = 2;
    core::Server server(options);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "overload server failed to start: %s\n",
                   error.c_str());
      return 1;
    }
    // Pair 3 is the corpus's slowest pipeline run — it wedges the lone
    // worker long enough for the burst to overflow the queue.
    constexpr int kBurst = 8;
    std::vector<core::ClientResult> results(kBurst);
    std::vector<double> latencies(kBurst);
    std::vector<std::thread> clients;
    clients.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      clients.emplace_back([&, i] {
        core::ServeRequest request;
        request.pair = 3;
        const auto t0 = Clock::now();
        results[i] = core::SendRequest(overload_socket, request);
        latencies[i] = SecondsSince(t0);
      });
    }
    for (auto& t : clients) t.join();
    server.Drain();
    std::vector<double> served_latencies;
    for (int i = 0; i < kBurst; ++i) {
      if (results[i].ok) {
        ++burst_served;
        served_latencies.push_back(latencies[i]);
      } else if (results[i].error.code == "RETRY_AFTER") {
        ++burst_shed;
      } else {
        ++burst_unanswered;
      }
    }
    overload_p99_ms = PercentileMs(served_latencies, 99);
    std::printf("overload: burst of %d -> %llu served / %llu shed "
                "(served p99 %.2f ms, queue depth 2)\n",
                kBurst, static_cast<unsigned long long>(burst_served),
                static_cast<unsigned long long>(burst_shed), overload_p99_ms);
  }

  // -- Merge into the perf trajectory ---------------------------------------
  // serve_smoke only appears when the smoke leg actually ran: a full run
  // used to merge `serve_smoke: false` into the trajectory, which made
  // full-run JSONs diff against each other over a field that carries no
  // information there.
  char fields[1024];
  std::snprintf(
      fields, sizeof fields,
      "  \"serve_cold_rps\": %.1f,\n"
      "  \"serve_cold_p50_ms\": %.3f,\n"
      "  \"serve_cold_p99_ms\": %.3f,\n"
      "  \"serve_warm_rps\": %.1f,\n"
      "  \"serve_warm_p50_ms\": %.3f,\n"
      "  \"serve_warm_p99_ms\": %.3f,\n"
      "  \"serve_warm_requests\": %llu,\n"
      "  \"serve_warm_disk_hits\": %llu,\n"
      "  \"serve_overload_served\": %llu,\n"
      "  \"serve_overload_shed\": %llu,\n"
      "  \"serve_overload_p99_ms\": %.3f%s\n",
      cold.rps, cold.p50_ms, cold.p99_ms, warm.rps, warm.p50_ms, warm.p99_ms,
      static_cast<unsigned long long>(warm.requests),
      static_cast<unsigned long long>(warm_disk_hits),
      static_cast<unsigned long long>(burst_served),
      static_cast<unsigned long long>(burst_shed), overload_p99_ms,
      smoke ? ",\n  \"serve_smoke\": true" : "");
  if (MergeServeFields(out_path, fields)) {
    std::printf("merged serve fields into %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::remove((cache_dir + "/segments.dat").c_str());
  std::remove((cache_dir + "/index.dat").c_str());

  // Hard gates: the warm restart must actually reuse the disk tier, the
  // overload burst must shed explicitly, and nothing may go unanswered.
  if (warm_loaded == 0 || warm_disk_hits != warm.requests) {
    std::printf("FAIL: warm pass was not served from the disk tier "
                "(%llu loaded, %llu/%llu hits)\n",
                static_cast<unsigned long long>(warm_loaded),
                static_cast<unsigned long long>(warm_disk_hits),
                static_cast<unsigned long long>(warm.requests));
    return 1;
  }
  if (burst_shed == 0) {
    std::printf("FAIL: the overload burst shed nothing — the queue bound "
                "did not engage\n");
    return 1;
  }
  if (burst_unanswered != 0) {
    std::printf("FAIL: %llu burst request(s) got no structured answer\n",
                static_cast<unsigned long long>(burst_unanswered));
    return 1;
  }
  if (!all_ok) {
    std::printf("FAIL: a sustained-leg request failed\n");
    return 1;
  }
  return 0;
#endif
}
