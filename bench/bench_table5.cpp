// Table V reproduction: OCTOPOCS vs AFLFast vs AFLGo.
//
// Paper reference: with 20 hours of fuzzing, AFLFast verified only the
// artificial gif2png case (201 s) and AFLGo verified none, while
// OCTOPOCS verified all three pairs within 15 minutes. Wall-clock
// budgets scale down to execution budgets here (MiniVM executions are
// microseconds, not milliseconds); the shape under test is who verifies
// and who exhausts the budget.
//
// Known deviation (recorded in EXPERIMENTS.md): our AFLGo analog shares
// AFLFast's mutation engine, so on the one-byte gif2png case it can
// succeed where the paper's AFLGo did not (their failure had
// tool-specific causes); both fuzzers still fail both container-reform
// cases, which carries the paper's conclusion.
#include <cstdio>

#include "bench_util.h"
#include "core/octopocs.h"
#include "fuzz/fuzzer.h"

using namespace octopocs;

namespace {

constexpr std::uint64_t kBudget = 300'000;  // execs ≙ the paper's 20 h

std::string FuzzCell(const fuzz::FuzzResult& r) {
  if (!r.verified) return "N/A (budget)";
  return bench::Fmt("%.1f", r.elapsed_seconds * 1e3) + " ms / " +
         bench::FmtU(r.execs_to_crash) + " execs";
}

}  // namespace

int main() {
  std::printf("=== Table V: elapsed effort to verify (fuzzers vs OCTOPOCS) ===\n");
  std::printf("(paper: AFLFast verifies only gif2png; AFLGo none; "
              "OCTOPOCS all three)\n\n");

  struct Row {
    int pair_idx;
    const char* ep;
  };
  const Row rows[] = {{7, "mj2k_decode"},
                      {8, "mj2k_decode"},
                      {9, "gif_read_image"}};

  bench::TextTable table({"S", "T", "AFLFast", "AFLGo", "OCTOPOCS"});

  bool shape_ok = true;
  for (const Row& row : rows) {
    const corpus::Pair pair = corpus::BuildPair(row.pair_idx);
    const vm::FuncId target = pair.t.FindFunction(row.ep);

    fuzz::FuzzOptions fopts;
    fopts.max_execs = kBudget;
    fuzz::AflFastFuzzer aflfast(pair.t, target, {pair.poc}, fopts);
    const fuzz::FuzzResult fast = aflfast.Run();

    const cfg::Cfg graph = cfg::Cfg::Build(pair.t);
    fuzz::AflGoFuzzer aflgo(pair.t, target, graph, {pair.poc}, fopts);
    const fuzz::FuzzResult go = aflgo.Run();

    core::PipelineOptions popts;
    popts.verify_exec.fuel = 2'000'000;
    const core::VerificationReport octo = core::VerifyPair(pair, popts);
    const bool octo_ok = octo.verdict == core::Verdict::kTriggered;

    // Paper shape: OCTOPOCS verifies all three; both fuzzers fail the
    // two container-reform pairs (7 and 8); AFLFast cracks gif2png.
    // (Our AFLGo analog may also crack gif2png — a documented deviation,
    // see EXPERIMENTS.md — so its result there is not part of the gate.)
    if (!octo_ok) shape_ok = false;
    if (row.pair_idx != 9 && (fast.verified || go.verified)) {
      shape_ok = false;
    }
    if (row.pair_idx == 9 && !fast.verified) shape_ok = false;

    table.AddRow({pair.s_name, pair.t_name, FuzzCell(fast), FuzzCell(go),
                  octo_ok ? bench::Fmt("%.1f",
                                       octo.timings.total_seconds * 1e3) +
                                " ms"
                          : "FAILED"});
  }
  table.Print();
  std::printf("\nFuzzer budget: %llu executions per tool and target.\n",
              static_cast<unsigned long long>(kBudget));
  std::printf("Shape matches the paper: %s\n", shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
