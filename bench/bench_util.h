// Small shared helpers for the table-reproduction benches: fixed-width
// text table rendering so every bench prints rows shaped like the
// paper's tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace octopocs::bench {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    widths_.resize(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      widths_[i] = headers_[i].size();
    }
  }

  void AddRow(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    PrintRow(headers_);
    std::string sep;
    for (const std::size_t w : widths_) {
      sep += std::string(w + 2, '-') + "+";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row);
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      line += " " + cells[i] +
              std::string(widths_[i] - cells[i].size() + 1, ' ') + "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

inline std::string FmtU(unsigned long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", v);
  return buf;
}

}  // namespace octopocs::bench
