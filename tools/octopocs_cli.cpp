// octopocs — command-line driver for the pipeline.
//
// Subcommands:
//   verify <s.asm> <t.asm> <poc.bin> [options]
//       Run the full pipeline. ℓ defaults to the clone detector's
//       output; --shared overrides it. Writes the reformed PoC with
//       --out. Options:
//         --shared f1,f2,...   use these ℓ names instead of detecting
//         --out FILE           write poc' to FILE when generated
//         --context-free       Table III mode (no per-encounter bunches)
//         --theta N            loop cap (default 120)
//         --adaptive-theta     retry with growing θ on loop-dead verdicts
//         --static-cfg         no dynamic CFG edges
//         --fix-angr           resolve obfuscated indirect calls
//         --deadline-ms N      wall-clock budget for the whole pipeline;
//                              on expiry the verdict is Failure with the
//                              tripped phase named in the report
//         --cfg-fallback       retry a failed dynamic CFG with a static
//                              one instead of reporting Failure
//         --solver-retry       retry a solver-budget failure once with
//                              the step budget doubled
//         --fuzz-fallback      when symex ends program-dead or
//                              budget-exhausted, run a directed fuzzing
//                              campaign seeded from the PoC before
//                              settling for the dead-end verdict; a
//                              crash at ep re-verifies concretely and
//                              reports TriggeredByFuzzing (DESIGN.md
//                              §16). Default off.
//         --fuzz-seed N        campaign RNG seed (default 1). Together
//                              with --fuzz-execs this makes the rung's
//                              verdict byte-reproducible.
//         --fuzz-execs N       campaign budget in executions, not wall
//                              clock (default 200000)
//         --fuzz-deadline-ms N wall-clock backstop for the fuzz phase
//                              (abandons the campaign; never reorders
//                              its deterministic schedule)
//         --trace-out FILE     write the structured trace (phase spans,
//                              executor counters) as JSONL to FILE
//         --artifact-cache=on|off
//                              consult/populate the content-addressed
//                              artifact store (default off); results
//                              are byte-identical either way
//         --vm-dispatch=switch|threaded
//                              interpreter backend for every concrete
//                              execution (default threaded). Verdicts
//                              are byte-identical across backends; the
//                              flag is the A/B baseline and the portable
//                              fallback.
//         --solver-backend=backtrack|propagate|portfolio
//                              CSP search core for every P2/P3 solver
//                              query (default propagate). Backends are
//                              answer-identical; backtrack is the slow
//                              trusted oracle, portfolio races both.
//   detect <s.asm> <t.asm>
//       Print the function-level clones between two programs.
//   run <prog.asm> <input.bin> [--trace] [--vm-dispatch=switch|threaded]
//       Execute a program on an input; print the exit/trap state.
//   minimize <prog.asm> <poc.bin> [--out FILE]
//       Delta-debug a crashing input down to its essential bytes.
//   disasm <prog.asm>
//       Assemble and disassemble (normalizes and validates a program).
//   export <pair-index> <dir>
//       Materialize a corpus pair (1-22) as s.asm / t.asm / poc.bin /
//       shared.txt so the other subcommands can chew on it.
//   corpus [--jobs N] [--extended] [--adaptive-theta]
//          [--pair-deadline-ms N] [--frontier-jobs N] [--trace-out FILE]
//          [--artifact-cache=on|off] [--isolate] [--rlimit-mb N]
//          [--max-retries N] [--journal FILE] [--resume FILE]
//          [--vm-dispatch=switch|threaded] [--pool]
//       Verify the whole built-in corpus (pairs 1-15, or 16-22 with
//       --extended) with N pipeline runs in flight at once. Reports are
//       printed in pair order and are byte-identical to a serial run
//       regardless of N. --pair-deadline-ms bounds each pair's
//       wall-clock time; a pair over budget degrades to Failure while
//       the rest of the corpus finishes. --frontier-jobs additionally
//       parallelizes *within* each pair's directed symbolic execution
//       (work-stealing frontier; results stay byte-identical).
//       --artifact-cache=on shares origin-side artifacts (ep, crash
//       primitives, CFG edges) across pairs with a common S or T; the
//       summary then reports the store's hit/miss counts. --trace-out
//       captures the whole corpus run as one JSONL trace.
//       Production robustness (DESIGN.md §12): --isolate runs every
//       pair in a sandboxed, supervised worker process (`pair-worker`
//       mode of this binary) — a crashing or OOMing pair is retried
//       with backoff and quarantined after --max-retries, never taking
//       the run down; --rlimit-mb caps each worker's address space.
//       --journal FILE records a write-ahead fsync'd JSONL crash
//       journal; --resume FILE replays the finished pairs of an
//       interrupted run (same options only — the journal's fingerprint
//       is checked) and re-runs the rest, appending to the journal.
//       --pool (requires --isolate) keeps a fleet of pre-forked
//       persistent workers alive for the whole run instead of
//       fork/exec-ing one process per pair — same sandbox, same
//       crash-containment/retry/quarantine semantics, byte-identical
//       verdicts, but the spawn + warmup cost is paid once per worker.
//   pair-worker <idx> [pipeline flags]
//       Internal: verify one corpus pair and emit the framed report the
//       supervisor unmarshals (OCTO-REPORT {...} / OCTO-DONE). Spawned
//       by `corpus --isolate`; not meant for direct use.
//   pool-worker [pipeline flags]
//       Internal: the persistent variant — serves `OCTO-PAIR <idx>`
//       requests off stdin until EOF/OCTO-EXIT, one framed report per
//       request. Spawned by `corpus --isolate --pool`.
//   serve --socket PATH [--workers N] [--queue-depth N]
//         [--request-deadline-ms N] [--cache-dir DIR] [--trace-out FILE]
//         [pipeline flags]
//       Long-running verification daemon (DESIGN.md §14): accepts
//       OCTO-REQ requests over a unix-domain socket, runs them through
//       the phase graph with warm in-memory artifacts, and persists
//       completed reports under --cache-dir so a restarted (or SIGKILLed
//       and restarted) daemon answers repeat requests from disk.
//       --queue-depth bounds admission; beyond it requests shed with a
//       structured RETRY_AFTER (lowest-priority queued work is displaced
//       first). --request-deadline-ms caps each request server-side; a
//       tighter client deadline wins (sooner-rule). SIGINT/SIGTERM
//       drains: queued and in-flight requests finish and are answered.
//   client --socket PATH <pair-idx> [--poc FILE] [--priority N]
//          [--deadline-ms N] [--cfg-fallback] [--solver-retry]
//          [--fuzz-fallback] [--fuzz-seed N] [--fuzz-execs N]
//          [--degrade-on-timeout] [--timeout-ms N] [--id STR]
//          [--retry N] [--gen-seed N]
//       Send one verification request to a running daemon and print the
//       result in the exact per-pair format `corpus` uses (so a served
//       corpus diffs byte-identically against a batch run). Exit 0 on a
//       report, 5 when shed (RETRY_AFTER — honor retry_after_ms), 3 on
//       a transport failure, 1/2 on server-side errors. --retry N naps
//       for the shed's retry_after_ms (floored by capped-exponential
//       backoff) and re-sends up to N times; the default stays one-shot
//       so scripts driving the backoff themselves keep exit 5.
//       --gen-seed routes generated pair indices (999 and >= 1000) to
//       the synthetic-pair generator.
//   gen [--seed N] [--count N] [--out FILE]
//       Emit the deterministic manifest of a generated synthetic corpus
//       (src/gen): one taxonomy + label + content-hash line per pair.
//       The same seed prints byte-identical manifests on every run —
//       CI diffs two runs to enforce it.
//   soak --workdir DIR [--seed N] [--pairs N] [--jobs N] [--smoke]
//        [--no-chaos] [--daemon-kills N] [--fuzz-execs N] [--out FILE]
//        [--trace-out FILE]
//       Generate a corpus and stream it through every execution surface
//       — in-process batch, supervised workers with a crash journal,
//       journal resume, the serve daemon in-process under a full fault
//       schedule, and a subprocess daemon SIGKILLed and restarted
//       mid-load — checking the crash-tolerance invariants
//       (src/gen/soak.h). Exits 0 only when every invariant held; --out
//       writes the deterministic report CI byte-diffs across two
//       same-seed runs.
//
// Exit code 0 on success; verify exits 0 only for a decisive verdict
// (Triggered or NotTriggerable); corpus exits 0 only when every pair's
// result type matches the registry's expected one, 1 when some pair
// reached a genuinely wrong verdict, and 4 when the only unexpected
// results are infrastructure failures (deadline expiry / contained
// faults) — distinguishable so CI can retry timeouts without masking
// real mismatches. SIGINT/SIGTERM drains gracefully — running pairs
// are cancelled, workers killed, trace buffers flushed and a partial
// summary printed — and exits 128+signal.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "clone/detector.h"
#include "core/artifact_store.h"
#include "core/journal.h"
#include "core/minimize.h"
#include "core/octopocs.h"
#include "core/parallel_verify.h"
#include "core/report_io.h"
#include "core/server.h"
#include "core/supervisor.h"
#include "corpus/extended.h"
#include "gen/generator.h"
#include "gen/soak.h"
#include "support/fault.h"
#include "support/hex.h"
#include "support/trace.h"
#include "vm/asm.h"
#include "vm/disasm.h"
#include "vm/trace.h"

using namespace octopocs;

namespace {

// -- Graceful interruption ----------------------------------------------------
//
// The handler only touches lock-free atomics (async-signal-safe); the
// actual drain is cooperative: `verify` polls g_cancel through its
// cancellation tokens, `corpus` additionally fans the flag out to every
// running pair's kill switch and to worker processes (SIGKILLed by
// their supervisors), and the main thread then flushes trace buffers,
// prints a partial summary, and exits 128+signal — an interrupt no
// longer loses the whole trace file or the finished pairs' results.
std::atomic<int> g_signal{0};
std::atomic<bool> g_cancel{false};

void OnSignal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  g_cancel.store(true, std::memory_order_relaxed);
}

void InstallSignalHandlers() {
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
}

/// Absolute path of this binary, for respawning as `pair-worker`.
std::string g_self_exe;

std::string ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Bytes ReadBinaryFile(const std::string& path) {
  const std::string text = ReadTextFile(path);
  return Bytes(text.begin(), text.end());
}

void WriteFile(const std::string& path, ByteView data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

void WriteFile(const std::string& path, const std::string& text) {
  WriteFile(path, ByteView(reinterpret_cast<const std::uint8_t*>(
                               text.data()),
                           text.size()));
}

std::vector<std::string> SplitCommas(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream ss(csv);
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

/// Generator seed for worker/client subcommands (--gen-seed). Non-zero
/// routes indices beyond the built-in corpora (hog pair 999, generated
/// pairs >= 1000) through gen::LoadGeneratedPair, exactly like the
/// daemon's GenPairLoader hook.
std::uint64_t g_gen_seed = 0;

corpus::Pair LoadPair(int idx) {
  if (g_gen_seed != 0 && idx >= gen::kHogIdx) {
    return gen::LoadGeneratedPair(g_gen_seed, idx);
  }
  return idx <= 15 ? corpus::BuildPair(idx) : corpus::BuildExtendedPair(idx);
}

/// Consumes --vm-dispatch=switch|threaded into `mode`. Returns false
/// when `arg` is not this flag; clears `ok` (and prints the complaint)
/// on an unrecognized backend name. Verdicts are byte-identical across
/// backends — the flag exists for A/B measurement and as the portable
/// fallback on toolchains without computed goto.
bool ParseVmDispatch(const std::string& arg, vm::DispatchMode* mode,
                     bool* ok) {
  constexpr const char kPrefix[] = "--vm-dispatch=";
  if (arg.rfind(kPrefix, 0) != 0) return false;
  const std::string value = arg.substr(sizeof kPrefix - 1);
  if (value == "switch") {
    *mode = vm::DispatchMode::kSwitch;
  } else if (value == "threaded") {
    *mode = vm::DispatchMode::kThreaded;
  } else {
    std::fprintf(stderr,
                 "unknown --vm-dispatch backend: %s (want switch|threaded)\n",
                 value.c_str());
    *ok = false;
  }
  return true;
}

/// Consumes --solver-backend=backtrack|propagate|portfolio into `opts`.
/// Same contract as ParseVmDispatch: returns false when `arg` is not
/// this flag, clears `ok` on an unknown backend name. Backends are
/// answer-identical (CI diffs whole-corpus runs); the flag exists for
/// A/B verification and perf measurement.
bool ParseSolverBackendFlag(const std::string& arg,
                            core::PipelineOptions* opts, bool* ok) {
  constexpr const char kPrefix[] = "--solver-backend=";
  if (arg.rfind(kPrefix, 0) != 0) return false;
  const std::string value = arg.substr(sizeof kPrefix - 1);
  if (const auto kind = symex::ParseSolverBackend(value)) {
    core::SetSolverBackend(*opts, *kind);
  } else {
    std::fprintf(stderr,
                 "unknown --solver-backend: %s (want "
                 "backtrack|propagate|portfolio)\n",
                 value.c_str());
    *ok = false;
  }
  return true;
}

/// Consumes the fuzz-fallback rung flags shared by every
/// pipeline-running subcommand: --fuzz-fallback turns the rung on,
/// --fuzz-seed / --fuzz-execs / --fuzz-deadline-ms pin the campaign's
/// determinism knobs (DESIGN.md §16). Returns false when `arg` is not
/// one of ours.
bool ParseFuzzFlag(const std::string& arg, int argc, char** argv, int& i,
                   core::PipelineOptions* opts) {
  if (arg == "--fuzz-fallback") {
    opts->fuzz_fallback = true;
    return true;
  }
  if (arg == "--fuzz-seed" && i + 1 < argc) {
    opts->fuzz_seed = std::strtoull(argv[++i], nullptr, 10);
    return true;
  }
  if (arg == "--fuzz-execs" && i + 1 < argc) {
    opts->fuzz_execs = std::strtoull(argv[++i], nullptr, 10);
    return true;
  }
  if (arg == "--fuzz-deadline-ms" && i + 1 < argc) {
    opts->fuzz_deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    return true;
  }
  return false;
}

/// The observability options shared by `verify` and `corpus`: a JSONL
/// trace sink and the content-addressed artifact store.
struct ObservabilityFlags {
  std::string trace_out;
  bool artifact_cache = false;

  /// Consumes --trace-out FILE / --artifact-cache=on|off; returns false
  /// when `arg` is not one of ours.
  bool Parse(const std::string& arg, int argc, char** argv, int& i) {
    if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
      return true;
    }
    if (arg == "--artifact-cache=on") {
      artifact_cache = true;
      return true;
    }
    if (arg == "--artifact-cache=off") {
      artifact_cache = false;
      return true;
    }
    return false;
  }

  /// Points the pipeline at the sinks this invocation enabled.
  void Wire(core::PipelineOptions& opts, support::Tracer& tracer,
            core::ArtifactStore& store) const {
    if (!trace_out.empty()) opts.tracer = &tracer;
    if (artifact_cache) opts.artifacts = &store;
  }

  /// Serialises the trace (when requested). Returns false on I/O error.
  bool FinishTrace(const support::Tracer& tracer) const {
    if (trace_out.empty()) return true;
    if (!tracer.WriteJsonlFile(trace_out)) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
      return false;
    }
    std::printf("trace:     %zu event(s) -> %s\n", tracer.event_count(),
                trace_out.c_str());
    return true;
  }
};

int CmdVerify(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: octopocs verify <s.asm> <t.asm> <poc.bin> "
                         "[--shared f1,f2] [--out FILE] [--context-free] "
                         "[--theta N] [--adaptive-theta] [--static-cfg] "
                         "[--fix-angr] [--deadline-ms N] [--cfg-fallback] "
                         "[--solver-retry] [--fuzz-fallback] [--fuzz-seed N] "
                         "[--fuzz-execs N] [--fuzz-deadline-ms N] "
                         "[--frontier-jobs N] "
                         "[--trace-out FILE] [--artifact-cache=on|off] "
                         "[--vm-dispatch=switch|threaded] "
                         "[--solver-backend=backtrack|propagate|portfolio]"
                         "\n");
    return 2;
  }
  const vm::Program s = vm::Assemble(ReadTextFile(argv[0]));
  const vm::Program t = vm::Assemble(ReadTextFile(argv[1]));
  const Bytes poc = ReadBinaryFile(argv[2]);

  std::vector<std::string> shared;
  std::map<std::string, std::string> name_map;
  std::string out_path;
  core::PipelineOptions opts;
  ObservabilityFlags obs;
  vm::DispatchMode dispatch = vm::DispatchMode::kThreaded;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shared" && i + 1 < argc) {
      shared = SplitCommas(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--context-free") {
      opts.taint.context_aware = false;
    } else if (arg == "--theta" && i + 1 < argc) {
      opts.symex.theta = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--adaptive-theta") {
      opts.adaptive_theta = true;
    } else if (arg == "--static-cfg") {
      opts.cfg.use_dynamic = false;
    } else if (arg == "--fix-angr") {
      opts.cfg.resolve_obfuscated_icalls = true;
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      opts.deadline_ms = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--cfg-fallback") {
      opts.cfg_fallback_to_static = true;
    } else if (arg == "--solver-retry") {
      opts.solver_budget_retry = true;
    } else if (ParseFuzzFlag(arg, argc, argv, i, &opts)) {
      // consumed
    } else if (arg == "--frontier-jobs" && i + 1 < argc) {
      opts.symex.frontier_jobs =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (bool ok = true; ParseVmDispatch(arg, &dispatch, &ok)) {
      if (!ok) return 2;
      core::SetVmDispatch(opts, dispatch);
    } else if (bool ok = true; ParseSolverBackendFlag(arg, &opts, &ok)) {
      if (!ok) return 2;
    } else if (obs.Parse(arg, argc, argv, i)) {
      // consumed
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }
  if (shared.empty()) {
    for (const auto& m : clone::DetectClones(s, t)) {
      shared.push_back(m.name_in_s);
      if (m.name_in_s != m.name_in_t) name_map[m.name_in_s] = m.name_in_t;
    }
    std::printf("detected ℓ (%zu function%s):", shared.size(),
                shared.size() == 1 ? "" : "s");
    for (const auto& fn : shared) std::printf(" %s", fn.c_str());
    std::printf("\n");
    if (shared.empty()) {
      std::fprintf(stderr, "no clones detected; pass --shared\n");
      return 2;
    }
  }

  support::Tracer tracer;
  core::ArtifactStore store;
  obs.Wire(opts, tracer, store);
  InstallSignalHandlers();
  opts.cancel_flag = &g_cancel;
  core::Octopocs pipeline(s, t, shared, poc, opts, name_map);
  const core::VerificationReport r = pipeline.Verify();

  std::printf("verdict:   %s (%s)\n", core::VerdictName(r.verdict).data(),
              core::ResultTypeName(r.type).data());
  std::printf("ep:        %s | encounters in S: %u | primitives: %zu bytes "
              "in %zu bunch(es)\n",
              r.ep_name.c_str(), r.ep_encounters_in_s,
              r.crash_primitive_bytes, r.bunch_count);
  std::printf("symex:     %s | %llu states | %llu instructions\n",
              symex::SymexStatusName(r.symex_status).data(),
              static_cast<unsigned long long>(r.symex_stats.states_created),
              static_cast<unsigned long long>(r.symex_stats.instructions));
  std::printf("caches:    solver %llu hit / %llu miss | interner %llu hit "
              "/ %llu node\n",
              static_cast<unsigned long long>(r.symex_stats.solver_cache_hits),
              static_cast<unsigned long long>(
                  r.symex_stats.solver_cache_misses),
              static_cast<unsigned long long>(r.symex_stats.expr_intern_hits),
              static_cast<unsigned long long>(
                  r.symex_stats.expr_intern_nodes));
  std::printf("  by kind: exact %llu | model-reuse %llu | subsumed %llu\n",
              static_cast<unsigned long long>(r.symex_stats.solver_exact_hits),
              static_cast<unsigned long long>(
                  r.symex_stats.solver_model_reuse_hits),
              static_cast<unsigned long long>(
                  r.symex_stats.solver_subsumption_hits));
  if (r.fuzz_attempted) {
    std::printf("fuzz:      %llu exec(s) | crash at %llu | best distance "
                "%.2f | seed %llu\n",
                static_cast<unsigned long long>(r.fuzz_execs),
                static_cast<unsigned long long>(r.fuzz_execs_to_crash),
                r.fuzz_best_distance,
                static_cast<unsigned long long>(r.fuzz_seed));
  }
  std::printf("detail:    %s\n", r.detail.c_str());
  // A retry rung can succeed (empty failed_phase but the substitution
  // happened) — the verdict then rests on weaker footing and the user
  // must see that.
  if (!r.failed_phase.empty() || r.cfg_static_fallback ||
      r.solver_budget_retried) {
    std::printf("degraded:  %s%s%s%s%s\n",
                r.failed_phase.empty() ? "completed"
                                       : ("phase " + r.failed_phase).c_str(),
                r.deadline_expired ? " | deadline expired" : "",
                r.exception_contained ? " | exception contained" : "",
                r.cfg_static_fallback ? " | static-CFG fallback" : "",
                r.solver_budget_retried ? " | solver budget retried" : "");
  }
  std::printf("time:      %.3f ms\n", r.timings.total_seconds * 1e3);
  if (obs.artifact_cache) {
    const core::ArtifactStore::Stats st = store.stats();
    std::printf("artifacts: %llu hit / %llu miss / %llu stored\n",
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.insertions));
  }
  obs.FinishTrace(tracer);
  if (r.poc_generated) {
    std::printf("poc' (%zu bytes): %s\n", r.reformed_poc.size(),
                ToHex(r.reformed_poc).c_str());
    if (!out_path.empty()) {
      WriteFile(out_path, ByteView(r.reformed_poc));
      std::printf("written to %s\n", out_path.c_str());
    }
  }
  const int sig = g_signal.load(std::memory_order_relaxed);
  if (sig != 0) {
    std::printf("interrupted by signal %d — partial report above, trace "
                "flushed\n", sig);
    return 128 + sig;
  }
  return r.verdict == core::Verdict::kFailure ? 1 : 0;
}

// Worker half of `corpus --isolate`: verify exactly one pair and write
// the framed report (OCTO-REPORT {...} / OCTO-DONE) to stdout for the
// supervisor to unmarshal. Pipeline flags mirror the corpus command so
// the supervisor can forward its configuration verbatim; the verdict is
// byte-identical to an in-process VerifyPair with the same options.
//
// --abort-fault SITE:SKIP:STAMP is a test hook for the CI fault leg:
// when STAMP does not exist yet, it is created and the named fault site
// is armed in hard-abort mode, so this worker dies mid-pair (SIGABRT)
// exactly once per stamp file — the supervisor's retry then runs clean
// and the corpus result must come out unharmed.
int CmdPairWorker(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: octopocs pair-worker <idx> "
                         "[--adaptive-theta] [--frontier-jobs N] "
                         "[--deadline-ms N] [--theta N] [--context-free] "
                         "[--static-cfg] [--fix-angr] [--cfg-fallback] "
                         "[--solver-retry] [--fuzz-fallback] [--fuzz-seed N] "
                         "[--fuzz-execs N] [--fuzz-deadline-ms N] "
                         "[--abort-fault SITE:SKIP:STAMP] "
                         "[--vm-dispatch=switch|threaded] "
                         "[--solver-backend=backtrack|propagate|portfolio]"
                         "\n");
    return 2;
  }
  const int idx = std::atoi(argv[0]);
  core::PipelineOptions opts;
  std::string abort_fault;
  vm::DispatchMode dispatch = vm::DispatchMode::kThreaded;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--adaptive-theta") {
      opts.adaptive_theta = true;
    } else if (arg == "--frontier-jobs" && i + 1 < argc) {
      opts.symex.frontier_jobs =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      opts.deadline_ms = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--theta" && i + 1 < argc) {
      opts.symex.theta = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--context-free") {
      opts.taint.context_aware = false;
    } else if (arg == "--static-cfg") {
      opts.cfg.use_dynamic = false;
    } else if (arg == "--fix-angr") {
      opts.cfg.resolve_obfuscated_icalls = true;
    } else if (arg == "--cfg-fallback") {
      opts.cfg_fallback_to_static = true;
    } else if (arg == "--solver-retry") {
      opts.solver_budget_retry = true;
    } else if (ParseFuzzFlag(arg, argc, argv, i, &opts)) {
      // consumed
    } else if (arg == "--abort-fault" && i + 1 < argc) {
      abort_fault = argv[++i];
    } else if (arg == "--gen-seed" && i + 1 < argc) {
      g_gen_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (bool ok = true; ParseVmDispatch(arg, &dispatch, &ok)) {
      if (!ok) return 2;
      core::SetVmDispatch(opts, dispatch);
    } else if (bool ok = true; ParseSolverBackendFlag(arg, &opts, &ok)) {
      if (!ok) return 2;
    } else {
      std::fprintf(stderr, "unknown pair-worker option: %s\n", arg.c_str());
      return 2;
    }
  }

  if (!abort_fault.empty()) {
    const std::size_t c1 = abort_fault.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos
                                : abort_fault.find(':', c1 + 1);
    support::FaultSite site;
    if (c2 == std::string::npos ||
        !support::FaultSiteFromName(abort_fault.substr(0, c1), &site)) {
      std::fprintf(stderr, "bad --abort-fault spec: %s\n",
                   abort_fault.c_str());
      return 2;
    }
    const std::uint64_t skip = static_cast<std::uint64_t>(
        std::atoll(abort_fault.substr(c1 + 1, c2 - c1 - 1).c_str()));
    const std::string stamp = abort_fault.substr(c2 + 1);
    if (!std::ifstream(stamp).good()) {
      WriteFile(stamp, std::string("armed\n"));
      support::fault::Arm(site, skip);
      support::fault::AbortOnFire(true);
    }
  }

  const corpus::Pair pair = LoadPair(idx);
  const core::VerificationReport report = core::VerifyPair(pair, opts);
  support::fault::Disarm();
  const std::string framed = core::MarshalWorkerReport(report);
  std::fwrite(framed.data(), 1, framed.size(), stdout);
  std::fflush(stdout);
  return 0;
}

// Persistent worker half of `corpus --isolate --pool`: parse the same
// pipeline flags as pair-worker once, then serve pair requests off
// stdin until EOF/OCTO-EXIT — `OCTO-PAIR <idx>` in, the standard
// OCTO-REPORT/OCTO-DONE frame out. Fork/exec and warmup are paid once
// per worker instead of once per pair, and the worker keeps a warm
// artifact store across the pairs it serves (results are byte-identical
// with or without it). --abort-fault works exactly as in pair-worker:
// armed once per stamp file, so the first pair served dies mid-frame
// and the supervisor's respawn+retry must recover.
int CmdPoolWorker(int argc, char** argv) {
  core::PipelineOptions opts;
  std::string abort_fault;
  vm::DispatchMode dispatch = vm::DispatchMode::kThreaded;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--adaptive-theta") {
      opts.adaptive_theta = true;
    } else if (arg == "--frontier-jobs" && i + 1 < argc) {
      opts.symex.frontier_jobs =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      opts.deadline_ms = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--theta" && i + 1 < argc) {
      opts.symex.theta = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--context-free") {
      opts.taint.context_aware = false;
    } else if (arg == "--static-cfg") {
      opts.cfg.use_dynamic = false;
    } else if (arg == "--fix-angr") {
      opts.cfg.resolve_obfuscated_icalls = true;
    } else if (arg == "--cfg-fallback") {
      opts.cfg_fallback_to_static = true;
    } else if (arg == "--solver-retry") {
      opts.solver_budget_retry = true;
    } else if (ParseFuzzFlag(arg, argc, argv, i, &opts)) {
      // consumed
    } else if (arg == "--abort-fault" && i + 1 < argc) {
      abort_fault = argv[++i];
    } else if (arg == "--gen-seed" && i + 1 < argc) {
      g_gen_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (bool ok = true; ParseVmDispatch(arg, &dispatch, &ok)) {
      if (!ok) return 2;
      core::SetVmDispatch(opts, dispatch);
    } else if (bool ok = true; ParseSolverBackendFlag(arg, &opts, &ok)) {
      if (!ok) return 2;
    } else {
      std::fprintf(stderr, "unknown pool-worker option: %s\n", arg.c_str());
      return 2;
    }
  }

  if (!abort_fault.empty()) {
    const std::size_t c1 = abort_fault.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos
                                : abort_fault.find(':', c1 + 1);
    support::FaultSite site;
    if (c2 == std::string::npos ||
        !support::FaultSiteFromName(abort_fault.substr(0, c1), &site)) {
      std::fprintf(stderr, "bad --abort-fault spec: %s\n",
                   abort_fault.c_str());
      return 2;
    }
    const std::uint64_t skip = static_cast<std::uint64_t>(
        std::atoll(abort_fault.substr(c1 + 1, c2 - c1 - 1).c_str()));
    const std::string stamp = abort_fault.substr(c2 + 1);
    if (!std::ifstream(stamp).good()) {
      WriteFile(stamp, std::string("armed\n"));
      support::fault::Arm(site, skip);
      support::fault::AbortOnFire(true);
    }
  }

  // Warm state that survives across the pairs this worker serves — the
  // whole point of pooling.
  core::ArtifactStore store;
  opts.artifacts = &store;

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == core::kPoolExitLine) break;
    if (line.rfind(core::kPoolPairPrefix, 0) != 0) {
      std::fprintf(stderr, "pool-worker: bad request line: %s\n",
                   line.c_str());
      return 2;
    }
    const int idx = std::atoi(line.c_str() + core::kPoolPairPrefix.size());
    const corpus::Pair pair = LoadPair(idx);
    const core::VerificationReport report = core::VerifyPair(pair, opts);
    support::fault::Disarm();
    const std::string framed = core::MarshalWorkerReport(report);
    std::fwrite(framed.data(), 1, framed.size(), stdout);
    std::fflush(stdout);
  }
  return 0;
}

int CmdDetect(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: octopocs detect <s.asm> <t.asm>\n");
    return 2;
  }
  const vm::Program s = vm::Assemble(ReadTextFile(argv[0]));
  const vm::Program t = vm::Assemble(ReadTextFile(argv[1]));
  const auto matches = clone::DetectClones(s, t);
  for (const auto& m : matches) {
    if (m.name_in_s == m.name_in_t) {
      std::printf("%s\n", m.name_in_s.c_str());
    } else {
      std::printf("%s -> %s (renamed)\n", m.name_in_s.c_str(),
                  m.name_in_t.c_str());
    }
  }
  std::printf("%zu clone(s)\n", matches.size());
  return 0;
}

int CmdRun(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: octopocs run <prog.asm> <input.bin> "
                         "[--trace] [--vm-dispatch=switch|threaded]\n");
    return 2;
  }
  const vm::Program p = vm::Assemble(ReadTextFile(argv[0]));
  const Bytes input = ReadBinaryFile(argv[1]);
  bool trace = false;
  vm::ExecOptions exec;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      trace = true;
    } else if (bool ok = true; ParseVmDispatch(arg, &exec.dispatch, &ok)) {
      if (!ok) return 2;
    } else {
      std::fprintf(stderr, "unknown run option: %s\n", arg.c_str());
      return 2;
    }
  }

  vm::ExecutionTracer tracer(400);
  tracer.BindProgram(&p);
  vm::Interpreter interp(p, input, exec);
  if (trace) interp.AddObserver(&tracer);
  const vm::ExecResult r = interp.Run();
  if (trace) std::printf("%s\n", tracer.text().c_str());
  std::printf("trap: %s", vm::TrapName(r.trap).data());
  if (r.trap != vm::TrapKind::kNone) {
    std::printf(" (%s, fault addr 0x%llx)", r.trap_message.c_str(),
                static_cast<unsigned long long>(r.fault_addr));
    std::printf("\nbacktrace:");
    for (const auto& frame : r.backtrace) {
      std::printf(" %s", p.Fn(frame.fn).name.c_str());
    }
  } else {
    std::printf(" | return value %llu",
                static_cast<unsigned long long>(r.return_value));
  }
  std::printf("\ninstructions: %llu\n",
              static_cast<unsigned long long>(r.instructions));
  return vm::IsVulnerabilityCrash(r.trap) ? 3 : 0;
}

int CmdMinimize(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: octopocs minimize <prog.asm> <poc.bin> "
                 "[--out FILE]\n");
    return 2;
  }
  const vm::Program p = vm::Assemble(ReadTextFile(argv[0]));
  const Bytes poc = ReadBinaryFile(argv[1]);
  const core::MinimizeResult r = core::MinimizePoc(p, poc);
  std::printf("minimized %zu -> %zu bytes (%zu zeroed in place, "
              "%llu runs)\n",
              r.original_size, r.poc.size(), r.zeroed_bytes,
              static_cast<unsigned long long>(r.runs));
  std::printf("%s\n", ToHex(r.poc).c_str());
  if (argc > 3 && std::strcmp(argv[2], "--out") == 0) {
    WriteFile(argv[3], ByteView(r.poc));
  }
  return 0;
}

int CmdDisasm(int argc, char** argv) {
  if (argc != 1) {
    std::fprintf(stderr, "usage: octopocs disasm <prog.asm>\n");
    return 2;
  }
  const vm::Program p = vm::Assemble(ReadTextFile(argv[0]));
  std::printf("%s", vm::Disassemble(p).c_str());
  return 0;
}

int CmdCorpus(int argc, char** argv) {
  unsigned jobs = 1;
  bool extended = false;
  bool isolate = false;
  bool pool = false;
  std::uint64_t pair_deadline_ms = 0;
  std::uint64_t rlimit_mb = 0;
  unsigned max_retries = 2;
  std::string journal_path;
  std::string resume_path;
  std::string worker_fault;
  core::PipelineOptions opts;
  ObservabilityFlags obs;
  vm::DispatchMode dispatch = vm::DispatchMode::kThreaded;
  // Pipeline flags a worker process must see to reproduce the
  // in-process verdict, collected verbatim as they are parsed.
  std::vector<std::string> forwarded;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n < 1) {
        std::fprintf(stderr, "--jobs wants a positive count\n");
        return 2;
      }
      jobs = static_cast<unsigned>(n);
    } else if (arg == "--extended") {
      extended = true;
    } else if (arg == "--adaptive-theta") {
      opts.adaptive_theta = true;
      forwarded.push_back(arg);
    } else if (ParseFuzzFlag(arg, argc, argv, i, &opts)) {
      // Verdict-bearing, so workers must see the exact same rung
      // configuration (value flags advance i onto their argument).
      forwarded.push_back(arg);
      if (arg != "--fuzz-fallback") forwarded.push_back(argv[i]);
    } else if (arg == "--pair-deadline-ms" && i + 1 < argc) {
      pair_deadline_ms = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--frontier-jobs" && i + 1 < argc) {
      opts.symex.frontier_jobs =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
      forwarded.push_back(arg);
      forwarded.push_back(argv[i]);
    } else if (arg == "--isolate") {
      isolate = true;
    } else if (arg == "--pool") {
      pool = true;
    } else if (arg == "--rlimit-mb" && i + 1 < argc) {
      rlimit_mb = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-retries" && i + 1 < argc) {
      max_retries = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--journal" && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (arg == "--resume" && i + 1 < argc) {
      resume_path = argv[++i];
    } else if (arg == "--worker-fault" && i + 1 < argc) {
      // Test hook (CI fault leg): forwarded to workers as
      // --abort-fault SITE:SKIP:STAMP — the first worker to see the
      // missing stamp file aborts mid-pair, its retry runs clean.
      worker_fault = argv[++i];
    } else if (bool ok = true; ParseVmDispatch(arg, &dispatch, &ok)) {
      if (!ok) return 2;
      core::SetVmDispatch(opts, dispatch);
      forwarded.push_back(arg);
    } else if (bool ok = true; ParseSolverBackendFlag(arg, &opts, &ok)) {
      if (!ok) return 2;
      forwarded.push_back(arg);
    } else if (obs.Parse(arg, argc, argv, i)) {
      // consumed
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }
  if ((!journal_path.empty() || !resume_path.empty()) &&
      !(journal_path.empty() || resume_path.empty())) {
    std::fprintf(stderr, "--journal and --resume are exclusive "
                         "(--resume appends to the resumed journal)\n");
    return 2;
  }
  if (!worker_fault.empty() && !isolate) {
    std::fprintf(stderr, "--worker-fault requires --isolate\n");
    return 2;
  }
  if (pool && !isolate) {
    std::fprintf(stderr, "--pool requires --isolate\n");
    return 2;
  }

  support::Tracer tracer;
  core::ArtifactStore store;
  obs.Wire(opts, tracer, store);
  const std::vector<corpus::Pair> pairs =
      extended ? corpus::BuildExtendedCorpus() : corpus::BuildCorpus();

  core::CorpusRunConfig config;
  config.jobs = jobs;
  config.pair_deadline_ms = pair_deadline_ms;
  config.interrupt = &g_signal;

  core::IsolationOptions isolation;
  if (isolate) {
    isolation.worker_binary = g_self_exe;
    isolation.worker_args = forwarded;
    isolation.max_retries = max_retries;
    isolation.rlimit_mb = rlimit_mb;
    if (pair_deadline_ms > 0) {
      // The worker honors the budget cooperatively via its in-pipeline
      // deadline; the supervisor's SIGKILL backstop sits 2s above it
      // for workers too wedged to poll.
      isolation.worker_args.push_back("--deadline-ms");
      isolation.worker_args.push_back(std::to_string(pair_deadline_ms));
      isolation.deadline_ms = pair_deadline_ms + 2000;
    }
    if (!worker_fault.empty()) {
      isolation.worker_args.push_back("--abort-fault");
      isolation.worker_args.push_back(worker_fault);
    }
    config.isolation = &isolation;
  }
  // The pool copies its (fully populated) options; created before the
  // run so workers persist across pairs, destroyed after it so no
  // worker outlives the summary.
  std::unique_ptr<core::WorkerPool> worker_pool;
  if (pool) {
    worker_pool = std::make_unique<core::WorkerPool>(isolation, jobs);
    config.worker_pool = worker_pool.get();
  }

  // The journal fingerprint covers every verdict-bearing knob, so a
  // resume against different options is refused instead of splicing
  // incomparable verdicts into one result set.
  const std::string fingerprint = core::CorpusOptionsFingerprint(
      opts, extended, pairs.size(), pair_deadline_ms, isolate, rlimit_mb);
  std::unique_ptr<core::Journal> journal;
  core::JournalState resume_state;
  if (!resume_path.empty()) {
    std::string err;
    auto state = core::LoadJournal(resume_path, &err);
    if (!state) {
      std::fprintf(stderr, "cannot resume: %s\n", err.c_str());
      return 2;
    }
    if (state->options_hash != fingerprint) {
      std::fprintf(stderr,
                   "refusing to resume %s: journal options fingerprint %s "
                   "does not match this invocation's %s\n",
                   resume_path.c_str(), state->options_hash.c_str(),
                   fingerprint.c_str());
      return 2;
    }
    if (state->pair_count != pairs.size()) {
      std::fprintf(stderr,
                   "refusing to resume %s: journal covers %zu pair(s), "
                   "this invocation runs %zu\n",
                   resume_path.c_str(), state->pair_count, pairs.size());
      return 2;
    }
    resume_state = std::move(*state);
    journal = core::Journal::Resume(resume_path, resume_state, &err);
    if (!journal) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    config.resume_finished = &resume_state.finished;
    std::printf("resume:    %zu finished pair(s) replayed, %zu in flight "
                "at the crash re-run%s\n",
                resume_state.finished.size(),
                resume_state.started_unfinished.size(),
                resume_state.torn_tail ? " (torn tail healed)" : "");
  } else if (!journal_path.empty()) {
    std::string err;
    journal = core::Journal::Create(journal_path, fingerprint, pairs.size(),
                                    &err);
    if (!journal) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
  }
  config.journal = journal.get();

  InstallSignalHandlers();
  const auto start = std::chrono::steady_clock::now();
  const auto reports = core::VerifyCorpus(pairs, opts, config);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const int sig = g_signal.load(std::memory_order_relaxed);
  int decisive = 0;
  int expected_matches = 0;
  int infra_failures = 0;   // unexpected results caused by timeout/fault
  int wrong_verdicts = 0;   // unexpected results the tool actually decided
  int interrupted_pairs = 0;  // drain casualties, not statements
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const corpus::Pair& pair = pairs[i];
    const core::VerificationReport& r = reports[i];
    const bool as_expected = std::string(core::ResultTypeName(r.type)) ==
                             std::string(corpus::ExpectedResultName(pair.expected));
    const bool infra = r.deadline_expired || r.exception_contained;
    // On a drain, an unexpected deadline/worker failure says nothing
    // about the pair — the interrupt killed it, not the budget.
    const bool interrupted = sig != 0 && !as_expected && infra;
    if (r.verdict != core::Verdict::kFailure) ++decisive;
    if (as_expected) {
      ++expected_matches;
    } else if (interrupted) {
      ++interrupted_pairs;
    } else if (infra) {
      ++infra_failures;
    } else {
      ++wrong_verdicts;
    }
    const char* marker = as_expected  ? ""
                         : interrupted ? "  [INTERRUPTED]"
                         : infra       ? (r.deadline_expired
                                              ? "  [TIMEOUT]"
                                              : "  [FAULT]")
                                       : "  [UNEXPECTED]";
    std::printf("pair %2d  %-12s -> %-12s  %-15s %-8s %s%s\n", pair.idx,
                pair.s_name.c_str(), pair.t_name.c_str(),
                core::VerdictName(r.verdict).data(),
                core::ResultTypeName(r.type).data(), r.detail.c_str(),
                marker);
  }
  std::printf("%d/%zu decisive | %d/%zu as expected | %d timeout/fault | "
              "%u job(s) | %.3f s wall\n",
              decisive, pairs.size(), expected_matches, pairs.size(),
              infra_failures, jobs, wall);
  // The fuzz summary only exists when the rung is on, so rung-off runs
  // stay byte-identical to the pre-rung output.
  if (opts.fuzz_fallback) {
    int fuzz_attempts = 0;
    int fuzz_verified = 0;
    std::uint64_t fuzz_total_execs = 0;
    for (const auto& r : reports) {
      if (r.fuzz_attempted) {
        ++fuzz_attempts;
        fuzz_total_execs += r.fuzz_execs;
      }
      if (r.verdict == core::Verdict::kTriggeredByFuzzing) ++fuzz_verified;
    }
    std::printf("fuzz:      %d campaign(s) | %d verified by fuzzing | "
                "%llu exec(s) | seed %llu\n",
                fuzz_attempts, fuzz_verified,
                static_cast<unsigned long long>(fuzz_total_execs),
                static_cast<unsigned long long>(opts.fuzz_seed));
  }
  if (worker_pool != nullptr) {
    const core::WorkerPool::Stats ps = worker_pool->stats();
    std::printf("pool:      %llu spawn(s) / %llu respawn(s) / "
                "%llu dispatch(es)\n",
                static_cast<unsigned long long>(ps.spawns),
                static_cast<unsigned long long>(ps.respawns),
                static_cast<unsigned long long>(ps.dispatches));
  }
  if (obs.artifact_cache) {
    const core::ArtifactStore::Stats st = store.stats();
    std::printf("artifacts: %llu hit / %llu miss / %llu stored / "
                "%llu evicted\n",
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.insertions),
                static_cast<unsigned long long>(st.evictions));
  }
  if (config.resume_finished != nullptr) {
    // Replayed pairs were reprinted from the journal verbatim;
    // everything else above actually re-ran this invocation.
    std::printf("resume:    %zu pair(s) replayed from journal, %zu re-run\n",
                resume_state.finished.size(),
                pairs.size() - resume_state.finished.size());
  }
  obs.FinishTrace(tracer);
  // A graceful drain supersedes the verdict-based codes: the partial
  // summary above is informational (journaled pairs survive for
  // --resume), and 128+signal tells the caller why the run is partial.
  if (sig != 0) {
    std::printf("interrupted by signal %d: %d/%zu pair(s) finished, %d "
                "cancelled or never started%s\n",
                sig, expected_matches + infra_failures + wrong_verdicts,
                pairs.size(), interrupted_pairs,
                journal != nullptr ? " — resume with --resume" : "");
    return 128 + sig;
  }
  // Exit status keys off the registry's expected result types: the
  // corpus deliberately contains NotTriggerable and Failure pairs, so
  // "all decisive" would never hold for the stock corpus. A verdict
  // mismatch (the tool decided, and decided wrong) is a hard failure;
  // deadline/fault degradations alone get their own code so callers can
  // rerun with a bigger budget instead of treating it as a regression.
  if (wrong_verdicts > 0) return 1;
  if (infra_failures > 0) return 4;
  return 0;
}

int CmdServe(int argc, char** argv) {
  core::ServeOptions serve;
  std::string trace_out;
  vm::DispatchMode dispatch = vm::DispatchMode::kThreaded;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      serve.socket_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      serve.workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      serve.queue_depth = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--request-deadline-ms" && i + 1 < argc) {
      serve.request_deadline_ms =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      serve.cache_dir = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--adaptive-theta") {
      serve.pipeline.adaptive_theta = true;
    } else if (arg == "--theta" && i + 1 < argc) {
      serve.pipeline.symex.theta =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--context-free") {
      serve.pipeline.taint.context_aware = false;
    } else if (arg == "--static-cfg") {
      serve.pipeline.cfg.use_dynamic = false;
    } else if (arg == "--fix-angr") {
      serve.pipeline.cfg.resolve_obfuscated_icalls = true;
    } else if (arg == "--cfg-fallback") {
      serve.pipeline.cfg_fallback_to_static = true;
    } else if (arg == "--solver-retry") {
      serve.pipeline.solver_budget_retry = true;
    } else if (ParseFuzzFlag(arg, argc, argv, i, &serve.pipeline)) {
      // consumed
    } else if (arg == "--frontier-jobs" && i + 1 < argc) {
      serve.pipeline.symex.frontier_jobs =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (bool ok = true; ParseVmDispatch(arg, &dispatch, &ok)) {
      if (!ok) return 2;
      core::SetVmDispatch(serve.pipeline, dispatch);
    } else if (bool ok = true;
               ParseSolverBackendFlag(arg, &serve.pipeline, &ok)) {
      if (!ok) return 2;
    } else {
      std::fprintf(stderr, "unknown serve option: %s\n", arg.c_str());
      return 2;
    }
  }
  if (serve.socket_path.empty()) {
    std::fprintf(stderr, "usage: octopocs serve --socket PATH [--workers N] "
                         "[--queue-depth N] [--request-deadline-ms N] "
                         "[--cache-dir DIR] [--trace-out FILE] "
                         "[pipeline flags]\n");
    return 2;
  }

  InstallSignalHandlers();
  // Requests carrying gen_seed resolve their generated pairs through the
  // same loader the soak harness uses; without this hook they would be
  // rejected as BAD_REQUEST.
  core::SetGenPairLoader(&gen::LoadGeneratedPair);
  support::Tracer tracer;
  if (!trace_out.empty()) serve.tracer = &tracer;
  serve.interrupt = &g_signal;
  serve.pipeline.cancel_flag = &g_cancel;

  core::Server server(std::move(serve));
  std::string err;
  if (!server.Start(&err)) {
    std::fprintf(stderr, "cannot start daemon: %s\n", err.c_str());
    return 2;
  }
  {
    const core::DiskArtifactStore* disk = server.disk_store();
    std::printf("serving:   ready%s\n",
                disk == nullptr ? "" : " | persistent artifact cache on");
    if (disk != nullptr) {
      const core::DiskArtifactStore::Stats ds = disk->stats();
      std::printf("cache:     %llu artifact(s) loaded, %llu healed\n",
                  static_cast<unsigned long long>(ds.loaded_records),
                  static_cast<unsigned long long>(ds.healed_records));
    }
    std::fflush(stdout);
  }
  server.Wait();

  const core::ServeStats st = server.stats();
  std::printf("served:    %llu report(s) | %llu shed | %llu rejected | "
              "%llu response drop(s)\n",
              static_cast<unsigned long long>(st.served),
              static_cast<unsigned long long>(st.shed),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.response_drops));
  std::printf("retries:   %llu degraded / %llu contained\n",
              static_cast<unsigned long long>(st.degraded_retries),
              static_cast<unsigned long long>(st.contained_retries));
  if (const core::DiskArtifactStore* disk = server.disk_store()) {
    const core::DiskArtifactStore::Stats ds = disk->stats();
    std::printf("disk:      %llu hit / %llu miss / %llu stored / "
                "%llu corrupt-dropped\n",
                static_cast<unsigned long long>(ds.hits),
                static_cast<unsigned long long>(ds.misses),
                static_cast<unsigned long long>(ds.stores),
                static_cast<unsigned long long>(ds.corrupt_drops));
  }
  if (!trace_out.empty()) {
    if (!tracer.WriteJsonlFile(trace_out)) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
    } else {
      std::printf("trace:     %zu event(s) -> %s\n", tracer.event_count(),
                  trace_out.c_str());
    }
  }
  const int sig = g_signal.load(std::memory_order_relaxed);
  return sig != 0 ? 128 + sig : 0;
}

int CmdClient(int argc, char** argv) {
  std::string socket_path;
  std::string poc_path;
  std::uint64_t timeout_ms = 0;
  int retries = 0;
  core::ServeRequest request;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--poc" && i + 1 < argc) {
      poc_path = argv[++i];
    } else if (arg == "--retry" && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
    } else if (arg == "--gen-seed" && i + 1 < argc) {
      request.gen_seed = std::strtoull(argv[++i], nullptr, 10);
      g_gen_seed = request.gen_seed;
    } else if (arg == "--priority" && i + 1 < argc) {
      request.priority = std::atoi(argv[++i]);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      request.deadline_ms = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--cfg-fallback") {
      request.cfg_fallback = true;
    } else if (arg == "--solver-retry") {
      request.solver_retry = true;
    } else if (arg == "--fuzz-fallback") {
      request.fuzz_fallback = true;
    } else if (arg == "--fuzz-seed" && i + 1 < argc) {
      request.fuzz_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--fuzz-execs" && i + 1 < argc) {
      request.fuzz_execs = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--degrade-on-timeout") {
      request.degrade_on_timeout = true;
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--id" && i + 1 < argc) {
      request.id = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      request.pair = std::atoi(arg.c_str());
    } else {
      std::fprintf(stderr, "unknown client option: %s\n", arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty() || request.pair < 1) {
    std::fprintf(stderr, "usage: octopocs client --socket PATH <pair-idx> "
                         "[--poc FILE] [--priority N] [--deadline-ms N] "
                         "[--cfg-fallback] [--solver-retry] "
                         "[--fuzz-fallback] [--fuzz-seed N] [--fuzz-execs N] "
                         "[--degrade-on-timeout] [--timeout-ms N] "
                         "[--id STR] [--retry N] [--gen-seed N]\n");
    return 2;
  }
  if (!poc_path.empty()) request.poc_override = ReadBinaryFile(poc_path);

  // Without --retry the behaviour (and the exit-5 contract scripts key
  // off) is one shot: a shed still exits 5 with retry_after_ms printed.
  // With --retry N, RETRY_AFTER responses nap for the server's suggested
  // retry_after_ms (floored by capped-exponential backoff) and re-send
  // up to N times; exit 5 only remains when every attempt was shed.
  core::RetryPolicy policy;
  policy.max_retries = retries;
  int attempts = 0;
  const core::ClientResult result = core::SendRequestWithRetry(
      socket_path, request, timeout_ms, policy, &attempts);
  if (attempts > 1) {
    std::fprintf(stderr, "retried: %d attempt(s)\n", attempts);
  }
  if (!result.ok) {
    if (!result.transport_error.empty()) {
      std::fprintf(stderr, "transport: %s\n", result.transport_error.c_str());
      return 3;
    }
    std::fprintf(stderr, "server: %s (%s)", result.error.code.c_str(),
                 result.error.detail.c_str());
    if (result.error.code == "RETRY_AFTER") {
      std::fprintf(stderr, " retry after %llu ms",
                   static_cast<unsigned long long>(
                       result.error.retry_after_ms));
    }
    std::fprintf(stderr, "\n");
    if (result.error.code == "RETRY_AFTER") return 5;
    return result.error.code == "BAD_REQUEST" ? 2 : 1;
  }
  // The exact per-pair line `corpus` prints, so a served run diffs
  // byte-identically against a batch run (the CI smoke's check).
  const corpus::Pair pair = LoadPair(request.pair);
  const core::VerificationReport& r = result.report;
  std::printf("pair %2d  %-12s -> %-12s  %-15s %-8s %s\n", pair.idx,
              pair.s_name.c_str(), pair.t_name.c_str(),
              core::VerdictName(r.verdict).data(),
              core::ResultTypeName(r.type).data(), r.detail.c_str());
  return 0;
}

int CmdExport(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: octopocs export <pair-index 1..22> <dir>\n");
    return 2;
  }
  const int idx = std::atoi(argv[0]);
  const std::string dir = argv[1];
  const corpus::Pair pair = LoadPair(idx);
  WriteFile(dir + "/s.asm", vm::Disassemble(pair.s));
  WriteFile(dir + "/t.asm", vm::Disassemble(pair.t));
  WriteFile(dir + "/poc.bin", ByteView(pair.poc));
  std::string meta = "# pair " + std::to_string(pair.idx) + ": " +
                     pair.s_name + " -> " + pair.t_name + " (" +
                     pair.vuln_id + ", " + pair.cwe + ")\n";
  for (const auto& fn : pair.shared_functions) meta += fn + "\n";
  WriteFile(dir + "/shared.txt", meta);
  std::printf("exported pair %d (%s -> %s) to %s\n", pair.idx,
              pair.s_name.c_str(), pair.t_name.c_str(), dir.c_str());
  return 0;
}

// Deterministic manifest of a generated corpus: one DescribeGeneratedPair
// line per ordinal plus the hog pair. The same seed must produce a
// byte-identical manifest on every run and every machine — CI runs this
// twice and diffs.
int CmdGen(int argc, char** argv) {
  std::uint64_t seed = 1;
  int count = 64;
  std::string out_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--count" && i + 1 < argc) {
      count = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: octopocs gen [--seed N] [--count N] "
                           "[--out FILE]\n");
      return 2;
    }
  }
  if (count < 1) {
    std::fprintf(stderr, "--count wants a positive number of pairs\n");
    return 2;
  }
  std::string manifest = "gen-manifest seed=" + std::to_string(seed) +
                         " count=" + std::to_string(count) + "\n";
  for (const gen::GeneratedPair& g : gen::GenerateCorpus(seed, count)) {
    manifest += gen::DescribeGeneratedPair(g) + "\n";
  }
  manifest += gen::DescribeGeneratedPair(gen::BuildHogPair(seed)) + "\n";
  if (out_path.empty()) {
    std::fwrite(manifest.data(), 1, manifest.size(), stdout);
  } else {
    WriteFile(out_path, manifest);
    std::printf("manifest:  %d pair(s) + hog -> %s\n", count,
                out_path.c_str());
  }
  return 0;
}

// Chaos soak: generate a corpus and stream it through every execution
// surface under a seeded fault schedule (src/gen/soak.h lists the
// invariants). Exit 0 only when every invariant held; --out captures the
// deterministic report text CI byte-diffs across two same-seed runs.
int CmdSoak(int argc, char** argv) {
  gen::SoakOptions o;
  o.worker_binary = g_self_exe;
  std::string out_path;
  std::string trace_out;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      o.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--pairs" && i + 1 < argc) {
      o.pairs = std::atoi(argv[++i]);
    } else if (arg == "--jobs" && i + 1 < argc) {
      o.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--smoke") {
      o.pairs = 64;  // the PR-sized preset: every leg, small corpus
    } else if (arg == "--workdir" && i + 1 < argc) {
      o.workdir = argv[++i];
    } else if (arg == "--no-chaos") {
      o.chaos = false;
    } else if (arg == "--daemon-kills" && i + 1 < argc) {
      o.daemon_kills = std::atoi(argv[++i]);
    } else if (arg == "--fuzz-execs" && i + 1 < argc) {
      o.fuzz_execs = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: octopocs soak [--seed N] [--pairs N] "
                           "[--jobs N] [--smoke] --workdir DIR "
                           "[--no-chaos] [--daemon-kills N] [--fuzz-execs N] "
                           "[--out FILE] [--trace-out FILE]\n");
      return 2;
    }
  }
  if (o.pairs < 1) {
    std::fprintf(stderr, "--pairs wants a positive corpus size\n");
    return 2;
  }
  if (o.workdir.empty()) {
    std::fprintf(stderr, "soak: --workdir is required (journals, caches, "
                         "sockets and stamp files live there)\n");
    return 2;
  }
  core::SetGenPairLoader(&gen::LoadGeneratedPair);
  support::Tracer tracer;
  if (!trace_out.empty()) o.tracer = &tracer;

  const auto start = std::chrono::steady_clock::now();
  const gen::SoakReport report = gen::RunSoak(o);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const std::string text = gen::SerializeSoakReport(report);
  std::fwrite(text.data(), 1, text.size(), stdout);
  // The run-dependent half: scheduling- and timing-sensitive counters,
  // printed for the log but never part of the diffable report.
  std::printf("chaos:     %d fault(s) armed | %d client retry(ies) | "
              "%llu shed | %d daemon restart(s) | %d quarantine(s)\n",
              report.chaos_faults_armed, report.client_retries,
              static_cast<unsigned long long>(report.server_sheds),
              report.daemon_restarts, report.quarantines);
  std::printf("time:      %.3f s wall\n", wall);
  if (!out_path.empty()) {
    WriteFile(out_path, text);
    std::printf("report:    -> %s\n", out_path.c_str());
  }
  if (!trace_out.empty()) {
    if (!tracer.WriteJsonlFile(trace_out)) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_out.c_str());
    } else {
      std::printf("trace:     %zu event(s) -> %s\n", tracer.event_count(),
                  trace_out.c_str());
    }
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "octopocs — propagated-vulnerability verification\n"
                 "subcommands: verify, detect, run, minimize, disasm, "
                 "export, corpus, serve, client, gen, soak, pair-worker, "
                 "pool-worker\n");
    return 2;
  }
#ifndef _WIN32
  {
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
      buf[n] = '\0';
      g_self_exe = buf;
    }
  }
#endif
  if (g_self_exe.empty()) g_self_exe = argv[0];
  const std::string cmd = argv[1];
  try {
    if (cmd == "verify") return CmdVerify(argc - 2, argv + 2);
    if (cmd == "corpus") return CmdCorpus(argc - 2, argv + 2);
    if (cmd == "serve") return CmdServe(argc - 2, argv + 2);
    if (cmd == "client") return CmdClient(argc - 2, argv + 2);
    if (cmd == "gen") return CmdGen(argc - 2, argv + 2);
    if (cmd == "soak") return CmdSoak(argc - 2, argv + 2);
    if (cmd == "pair-worker") return CmdPairWorker(argc - 2, argv + 2);
    if (cmd == "pool-worker") return CmdPoolWorker(argc - 2, argv + 2);
    if (cmd == "detect") return CmdDetect(argc - 2, argv + 2);
    if (cmd == "run") return CmdRun(argc - 2, argv + 2);
    if (cmd == "minimize") return CmdMinimize(argc - 2, argv + 2);
    if (cmd == "disasm") return CmdDisasm(argc - 2, argv + 2);
    if (cmd == "export") return CmdExport(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand: %s\n", cmd.c_str());
  return 2;
}
