// End-to-end pipeline verification: Table II as a test suite.
//
// Every corpus pair must reproduce the paper's verdict:
//   Idx 1-6  → Type-I  Triggered (guiding input preserved)
//   Idx 7-9  → Type-II Triggered (PoC genuinely reformed)
//   Idx 10-14→ Type-III NotTriggerable
//   Idx 15   → Failure (simulated angr CFG defect)
// and whenever a poc' is produced it must actually crash T with the
// pair's documented trap class.
#include <gtest/gtest.h>

#include "core/octopocs.h"

namespace octopocs::core {
namespace {

PipelineOptions TestOptions() {
  PipelineOptions opts;
  // CWE-835 hangs should exhaust fuel quickly in unit tests.
  opts.verify_exec.fuel = 300'000;
  opts.symex.max_state_instructions = 400'000;
  return opts;
}

class PipelineTable2 : public ::testing::TestWithParam<int> {};

TEST_P(PipelineTable2, ReproducesPaperVerdict) {
  const corpus::Pair pair = corpus::BuildPair(GetParam());
  const VerificationReport report = VerifyPair(pair, TestOptions());

  SCOPED_TRACE("pair " + std::to_string(pair.idx) + " " + pair.s_name +
               " -> " + pair.t_name + " | detail: " + report.detail +
               " | symex: " +
               std::string(symex::SymexStatusName(report.symex_status)));

  switch (pair.expected) {
    case corpus::ExpectedResult::kTypeI:
      EXPECT_EQ(report.verdict, Verdict::kTriggered);
      EXPECT_EQ(report.type, ResultType::kTypeI);
      EXPECT_TRUE(report.poc_generated);
      EXPECT_EQ(report.observed_trap, pair.expected_trap);
      break;
    case corpus::ExpectedResult::kTypeII:
      EXPECT_EQ(report.verdict, Verdict::kTriggered);
      EXPECT_EQ(report.type, ResultType::kTypeII);
      EXPECT_TRUE(report.poc_generated);
      EXPECT_EQ(report.observed_trap, pair.expected_trap);
      break;
    case corpus::ExpectedResult::kTypeIII:
      EXPECT_EQ(report.verdict, Verdict::kNotTriggerable);
      EXPECT_EQ(report.type, ResultType::kTypeIII);
      EXPECT_FALSE(report.poc_generated);
      break;
    case corpus::ExpectedResult::kFailure:
      EXPECT_EQ(report.verdict, Verdict::kFailure);
      EXPECT_FALSE(report.poc_generated);
      break;
  }
}

TEST_P(PipelineTable2, ReformedPocCrashesTConcretely) {
  const corpus::Pair pair = corpus::BuildPair(GetParam());
  if (pair.expected != corpus::ExpectedResult::kTypeI &&
      pair.expected != corpus::ExpectedResult::kTypeII) {
    GTEST_SKIP() << "no poc' expected for this pair";
  }
  const VerificationReport report = VerifyPair(pair, TestOptions());
  ASSERT_TRUE(report.poc_generated) << report.detail;
  vm::ExecOptions opts;
  opts.fuel = 300'000;
  const auto run = vm::RunProgram(pair.t, report.reformed_poc, opts);
  EXPECT_EQ(run.trap, pair.expected_trap)
      << "trap " << vm::TrapName(run.trap) << " msg " << run.trap_message;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, PipelineTable2, ::testing::Range(1, 16));

TEST(Pipeline, EpDiscoveryFindsBottomMostSharedFunction) {
  const corpus::Pair pair = corpus::BuildPair(1);
  Octopocs pipeline(pair.s, pair.t, pair.shared_functions, pair.poc,
                    TestOptions());
  const auto ep = pipeline.DiscoverEp();
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(pair.s.Fn(*ep).name, "mjpg_decode");  // not mjpg_scan
}

TEST(Pipeline, NonCrashingPocFailsPreprocessing) {
  const corpus::Pair pair = corpus::BuildPair(1);
  Octopocs pipeline(pair.s, pair.t, pair.shared_functions,
                    Bytes{'M', 'J', 'P', 'G'}, TestOptions());
  EXPECT_FALSE(pipeline.DiscoverEp().has_value());
  const auto report = pipeline.Verify();
  EXPECT_EQ(report.verdict, Verdict::kFailure);
}

TEST(Pipeline, MotivatingExampleWrapsJ2kIntoPdf) {
  // The paper's Figure 2: a bare-J2K PoC is reformed into a PDF that
  // triggers the same null dereference in the MuPDF-analog.
  const corpus::Pair pair = corpus::BuildPair(8);
  const VerificationReport report = VerifyPair(pair, TestOptions());
  ASSERT_EQ(report.verdict, Verdict::kTriggered) << report.detail;
  // poc' now starts with the container magic "%PDF", not "MJ2K".
  ASSERT_GE(report.reformed_poc.size(), 4u);
  EXPECT_EQ(report.reformed_poc[0], '%');
  EXPECT_EQ(report.reformed_poc[1], 'P');
  // ...and the crash primitive (the J2K stream) is embedded deeper.
  bool found_mj2k = false;
  for (std::size_t i = 4; i + 4 <= report.reformed_poc.size(); ++i) {
    if (report.reformed_poc[i] == 'M' && report.reformed_poc[i + 1] == 'J' &&
        report.reformed_poc[i + 2] == '2' &&
        report.reformed_poc[i + 3] == 'K') {
      found_mj2k = true;
    }
  }
  EXPECT_TRUE(found_mj2k);
}

TEST(Pipeline, ReverseDirectionStripsContainer) {
  // Pair 7 goes the other way: the PDF-wrapped PoC shrinks to a bare
  // J2K stream for the opj_dump-analog.
  const corpus::Pair pair = corpus::BuildPair(7);
  const VerificationReport report = VerifyPair(pair, TestOptions());
  ASSERT_EQ(report.verdict, Verdict::kTriggered) << report.detail;
  ASSERT_GE(report.reformed_poc.size(), 4u);
  EXPECT_EQ(report.reformed_poc[0], 'M');
  EXPECT_EQ(report.reformed_poc[3], 'K');
  EXPECT_LT(report.reformed_poc.size(), pair.poc.size());
}

TEST(Pipeline, ArtificialGif2pngGetsValidVersion) {
  // Pair 9: the disclosed PoC carries version "87x"; the reformed PoC
  // must carry a version the strict build accepts.
  const corpus::Pair pair = corpus::BuildPair(9);
  ASSERT_EQ(pair.poc[5], 'x');
  const VerificationReport report = VerifyPair(pair, TestOptions());
  ASSERT_EQ(report.verdict, Verdict::kTriggered) << report.detail;
  ASSERT_GE(report.reformed_poc.size(), 6u);
  EXPECT_EQ(report.reformed_poc[3], '8');
  EXPECT_TRUE(report.reformed_poc[4] == '7' || report.reformed_poc[4] == '9');
  EXPECT_EQ(report.reformed_poc[5], 'a');
}

TEST(Pipeline, AngrDefectFixUnlocksPair15) {
  // Ablation B's claim: with the simulated angr bug "fixed", Idx-15
  // verifies like any Type-I/II pair.
  const corpus::Pair pair = corpus::BuildPair(15);
  PipelineOptions opts = TestOptions();
  opts.cfg.resolve_obfuscated_icalls = true;
  const VerificationReport report = VerifyPair(pair, opts);
  EXPECT_EQ(report.verdict, Verdict::kTriggered) << report.detail;
  EXPECT_EQ(report.observed_trap, pair.expected_trap);
}

TEST(Pipeline, ContextFreeTaintBreaksMultiEncounterPairs) {
  // Table III: without context information the multi-encounter pairs
  // (3, 4, 9) no longer produce a working poc'.
  for (const int idx : {3, 4, 9}) {
    const corpus::Pair pair = corpus::BuildPair(idx);
    PipelineOptions opts = TestOptions();
    opts.taint.context_aware = false;
    const VerificationReport report = VerifyPair(pair, opts);
    EXPECT_NE(report.verdict, Verdict::kTriggered)
        << "pair " << idx << " unexpectedly verified without context";
  }
  // ...while the single-encounter pairs still work.
  for (const int idx : {1, 5, 7}) {
    const corpus::Pair pair = corpus::BuildPair(idx);
    PipelineOptions opts = TestOptions();
    opts.taint.context_aware = false;
    const VerificationReport report = VerifyPair(pair, opts);
    EXPECT_EQ(report.verdict, Verdict::kTriggered)
        << "pair " << idx << ": " << report.detail;
  }
}

TEST(Pipeline, TimingsAndStatsPopulated) {
  const VerificationReport report =
      VerifyPair(corpus::BuildPair(1), TestOptions());
  EXPECT_GT(report.timings.total_seconds, 0.0);
  EXPECT_GT(report.bunch_count, 0u);
  EXPECT_GT(report.crash_primitive_bytes, 0u);
  EXPECT_GT(report.symex_stats.instructions, 0u);
  EXPECT_EQ(report.ep_name, "mjpg_decode");
}

}  // namespace
}  // namespace octopocs::core
