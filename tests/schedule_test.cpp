// Power schedules and direction machinery of the fuzzing baselines,
// plus the CFG constant-propagation resolver and solver hint ordering —
// unit-level checks for behaviours the integration suites only observe
// indirectly.
#include <gtest/gtest.h>

#include "cfg/cfg.h"
#include "fuzz/fuzzer.h"
#include "symex/solver.h"
#include "vm/asm.h"

namespace octopocs {
namespace {

// ---------------------------------------------------------------------------
// Solver value-hint ordering.
// ---------------------------------------------------------------------------

TEST(SolverHints, HintedValueWinsWhenFeasible) {
  symex::SolverOptions opts;
  opts.hints = {{0, 0x42}};
  symex::ByteSolver solver(opts);
  solver.Add(symex::MakeBinOp(vm::Op::kCmpLtU, symex::MakeInput(0),
                              symex::MakeConst(0x80)));
  const auto r = solver.Solve();
  ASSERT_EQ(r.status, symex::SolveStatus::kSat);
  EXPECT_EQ(r.model.at(0), 0x42);  // not the 0 default order would pick
}

TEST(SolverHints, InfeasibleHintFallsBack) {
  symex::SolverOptions opts;
  opts.hints = {{0, 0xF0}};  // violates the constraint below
  symex::ByteSolver solver(opts);
  solver.Add(symex::MakeBinOp(vm::Op::kCmpLtU, symex::MakeInput(0),
                              symex::MakeConst(0x10)));
  const auto r = solver.Solve();
  ASSERT_EQ(r.status, symex::SolveStatus::kSat);
  EXPECT_LT(r.model.at(0), 0x10);
}

// ---------------------------------------------------------------------------
// CFG constant propagation (the "angr fix").
// ---------------------------------------------------------------------------

TEST(ConstProp, ResolvesThroughRodataLoadAndXor) {
  const vm::Program p = vm::Assemble(R"(
    data key:
      .u8 0x33
    func main()
      fnaddr %f, handler
      movi %kp, @key
      load.1 %k, %kp, 0
      xor %obf, %f, %k
      xor %g, %obf, %k
      icall %v, %g()
      ret %v
    func handler()
      ret
  )");
  cfg::CfgOptions opts;
  opts.use_dynamic = false;  // const-prop alone must find the edge
  opts.resolve_obfuscated_icalls = true;
  const cfg::Cfg graph = cfg::Cfg::Build(p, opts);
  EXPECT_TRUE(graph.BackwardReachability(p.FindFunction("handler"))
                  .EntryReaches());
}

TEST(ConstProp, AcrossBlockBoundaries) {
  // The obfuscated pointer is computed in the entry block and used in a
  // later block; the must-constant dataflow has to carry it across.
  const vm::Program p = vm::Assemble(R"(
    func main()
      fnaddr %f, handler
      movi %k, 0x7070
      xor %obf, %f, %k
      movi %n, 1
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %c, %buf, 0
      br %c, hot, cold
    hot:
      xor %g, %obf, %k
      icall %v, %g()
      ret %v
    cold:
      ret %c
    func handler()
      ret
  )");
  cfg::CfgOptions opts;
  opts.use_dynamic = false;
  opts.resolve_obfuscated_icalls = true;
  const cfg::Cfg graph = cfg::Cfg::Build(p, opts);
  EXPECT_TRUE(graph.BackwardReachability(p.FindFunction("handler"))
                  .EntryReaches());
}

TEST(ConstProp, ConflictingDefinitionsStayUnknown) {
  // Two paths write different constants into the pointer register: the
  // meet is unknown, so nothing may be resolved (soundness: const-prop
  // must never invent an edge it cannot prove).
  const vm::Program p = vm::Assemble(R"(
    func main()
      movi %n, 1
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %c, %buf, 0
      br %c, a, b
    a:
      fnaddr %g, handler1
      jmp go
    b:
      fnaddr %g, handler2
      jmp go
    go:
      icall %v, %g()
      ret %v
    func handler1()
      ret
    func handler2()
      ret
  )");
  cfg::CfgOptions opts;
  opts.use_dynamic = false;
  opts.resolve_obfuscated_icalls = true;
  const cfg::Cfg graph = cfg::Cfg::Build(p, opts);
  // Neither handler is provably the unique target — no static edge.
  EXPECT_FALSE(graph.BackwardReachability(p.FindFunction("handler1"))
                   .EntryReaches());
  EXPECT_FALSE(graph.BackwardReachability(p.FindFunction("handler2"))
                   .EntryReaches());
  // The dynamic CFG (concrete seeds) still discovers them.
  cfg::CfgOptions dyn;
  dyn.resolve_obfuscated_icalls = true;
  dyn.seed_inputs = {Bytes{0}, Bytes{1}};
  const cfg::Cfg dgraph = cfg::Cfg::Build(p, dyn);
  EXPECT_TRUE(dgraph.BackwardReachability(p.FindFunction("handler1"))
                  .EntryReaches());
  EXPECT_TRUE(dgraph.BackwardReachability(p.FindFunction("handler2"))
                  .EntryReaches());
}

// ---------------------------------------------------------------------------
// Fuzzer harness behaviours.
// ---------------------------------------------------------------------------

TEST(FuzzHarness, BudgetIsRespected) {
  // A target nothing can crash: the fuzzer must stop exactly at budget.
  const vm::Program t = vm::Assemble(R"(
    func main()
      movi %n, 4
      alloc %buf, %n
      read %got, %buf, %n
      call %v, safe(%got)
      ret %v
    func safe(x)
      ret %x
  )");
  fuzz::FuzzOptions opts;
  opts.max_execs = 777;
  fuzz::AflFastFuzzer fuzzer(t, t.FindFunction("safe"), {Bytes{1, 2, 3, 4}},
                             opts);
  const auto r = fuzzer.Run();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.execs, 777u);
}

TEST(FuzzHarness, CoverageGrowsTheCorpus) {
  // Each distinct first byte below 4 opens a new branch: the corpus
  // should collect several coverage-novel inputs.
  const vm::Program t = vm::Assemble(R"(
    func main()
      movi %n, 1
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %c, %buf, 0
      movi %k1, 1
      cmpeq %is1, %c, %k1
      br %is1, b1, n1
    b1:
      movi %r, 10
      ret %r
    n1:
      movi %k2, 2
      cmpeq %is2, %c, %k2
      br %is2, b2, n2
    b2:
      movi %r, 20
      ret %r
    n2:
      movi %k3, 3
      cmpeq %is3, %c, %k3
      br %is3, b3, n3
    b3:
      movi %r, 30
      ret %r
    n3:
      call %v, leaf(%c)
      ret %v
    func leaf(x)
      ret %x
  )");
  fuzz::FuzzOptions opts;
  opts.max_execs = 3'000;
  fuzz::AflFastFuzzer fuzzer(t, t.FindFunction("leaf"), {Bytes{9}}, opts);
  const auto r = fuzzer.Run();
  EXPECT_GE(r.corpus_size, 3u);
  EXPECT_GT(r.edges_covered, 4u);
}

TEST(FuzzHarness, AflGoSkipsDeterministicStage) {
  // With a zero-ish budget the deterministic stage alone would exceed
  // it; AFLGo (-d) must not run it, so its exec count equals the seed
  // executions plus havoc only.
  const vm::Program t = vm::Assemble(R"(
    func main()
      movi %n, 2
      alloc %buf, %n
      read %got, %buf, %n
      call %v, leaf(%got)
      ret %v
    func leaf(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  fuzz::FuzzOptions opts;
  opts.max_execs = 50;
  fuzz::AflGoFuzzer go(t, t.FindFunction("leaf"), graph,
                       {Bytes(64, 0xAB)}, opts);
  const auto r = go.Run();
  EXPECT_EQ(r.execs, 50u);  // ran to budget, no early determinism burst
}

}  // namespace
}  // namespace octopocs
