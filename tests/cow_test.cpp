// Copy-on-write state containers: forked states must alias storage until
// first write, writes must never leak into siblings, and the fractional
// footprint accounting must reflect sharing.
#include <gtest/gtest.h>

#include "symex/cow.h"
#include "symex/expr.h"
#include "symex/state.h"

namespace octopocs::symex {
namespace {

TEST(CowPageMapTest, SetAndFindRoundTrip) {
  CowPageMap<int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(7), nullptr);
  m.Set(7, 70);
  m.Set(7, 71);  // overwrite does not grow size
  m.Set(64 * 3 + 5, 99);
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.Find(7), nullptr);
  EXPECT_EQ(*m.Find(7), 71);
  ASSERT_NE(m.Find(64 * 3 + 5), nullptr);
  EXPECT_EQ(*m.Find(64 * 3 + 5), 99);
  EXPECT_EQ(m.Find(8), nullptr);     // same page, empty slot
  EXPECT_EQ(m.Find(5000), nullptr);  // absent page
}

TEST(CowPageMapTest, WriteAfterForkDoesNotLeakIntoSibling) {
  CowPageMap<int> parent;
  for (std::uint64_t k = 0; k < 200; ++k) parent.Set(k, static_cast<int>(k));

  CowPageMap<int> child = parent;  // structural fork: pages shared
  child.Set(3, -3);                // first write clones page 0 only
  child.Set(500, 500);             // new page in the child

  EXPECT_EQ(*parent.Find(3), 3) << "child write leaked into parent";
  EXPECT_EQ(*child.Find(3), -3);
  EXPECT_EQ(parent.Find(500), nullptr);
  EXPECT_EQ(*child.Find(500), 500);

  parent.Set(100, -100);  // and the reverse direction
  EXPECT_EQ(*child.Find(100), 100) << "parent write leaked into child";
}

TEST(CowPageMapTest, ForEachVisitsInKeyOrder) {
  CowPageMap<int> m;
  m.Set(300, 3);
  m.Set(1, 1);
  m.Set(65, 2);
  std::vector<std::uint64_t> keys;
  m.ForEach([&](std::uint64_t k, int) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 65, 300}));
}

TEST(CowPageMapTest, SharedPagesChargeFractionalFootprint) {
  CowPageMap<int> parent;
  for (std::uint64_t k = 0; k < 640; ++k) parent.Set(k, 1);
  const std::size_t solo = parent.FootprintBytes();

  CowPageMap<int> child = parent;  // every page now has two owners
  const std::size_t shared = parent.FootprintBytes();
  EXPECT_LT(shared, solo) << "sharing should halve the page charge";

  child.DetachAllPages();  // back to sole ownership
  EXPECT_EQ(parent.FootprintBytes(), solo);
  EXPECT_EQ(child.FootprintBytes(), solo);
}

TEST(CowContainerTest, MutClonesOnlyWhenShared) {
  Cow<std::map<int, int>> a;
  a.mut()[1] = 10;
  EXPECT_EQ(a.owners(), 1u);

  Cow<std::map<int, int>> b = a;
  EXPECT_EQ(a.owners(), 2u);
  EXPECT_EQ(&a.get(), &b.get()) << "fork should share the container";

  b.mut()[1] = 20;  // clone-on-write
  EXPECT_EQ(a.owners(), 1u);
  EXPECT_EQ(a.get().at(1), 10);
  EXPECT_EQ(b.get().at(1), 20);

  auto& direct = b.mut();  // sole owner: no clone, stable address
  EXPECT_EQ(&direct, &b.get());
}

TEST(SymStateTest, ForkIsolatesMemoryHeapAndLoops) {
  SymState parent;
  parent.mem.Set(0x1000, MakeConst(7));
  parent.heap.mut()[0x2000] = SymAlloc{64, true};
  parent.loop_counts.mut()[{0, 1, 2}] = SymState::LoopEntry{1, 0};

  SymState child = parent;
  child.mem.Set(0x1000, MakeConst(9));
  child.heap.mut()[0x2000].alive = false;
  child.loop_counts.mut()[{0, 1, 2}].count = 5;

  EXPECT_EQ(Eval(*parent.mem.Find(0x1000), {}), 7u);
  EXPECT_EQ(Eval(*child.mem.Find(0x1000), {}), 9u);
  EXPECT_TRUE(parent.heap.get().at(0x2000).alive);
  EXPECT_FALSE(child.heap.get().at(0x2000).alive);
  EXPECT_EQ(parent.loop_counts.get().at({0, 1, 2}).count, 1u);
  EXPECT_EQ(child.loop_counts.get().at({0, 1, 2}).count, 5u);
}

TEST(SymStateTest, FootprintDropsWhenForkShares) {
  SymState s;
  for (std::uint64_t a = 0; a < 2048; ++a) {
    s.mem.Set(vm::kHeapBase + a, MakeInput(static_cast<std::uint32_t>(a)));
  }
  for (std::uint64_t i = 0; i < 32; ++i) {
    s.heap.mut()[vm::kHeapBase + i * 64] = SymAlloc{64, true};
  }
  const std::size_t solo = s.FootprintBytes();
  SymState fork = s;
  EXPECT_LT(s.FootprintBytes(), solo)
      << "shared pages/maps must be charged fractionally";
  // Both forks together still account for at least the solo storage.
  EXPECT_GE(s.FootprintBytes() + fork.FootprintBytes(), solo);
}

}  // namespace
}  // namespace octopocs::symex
