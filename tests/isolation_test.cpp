// Process isolation, supervision, and crash journaling (DESIGN.md §12).
//
// Three layers under test, bottom up:
//   - support/subprocess.h: fork/exec with rlimits, pipe capture, and
//     kill-on-deadline — exercised against /bin/sh so every
//     SubprocessStatus is reachable without a cooperating binary;
//   - core/supervisor.h: the pure child-outcome classification
//     (ClassifyChild on every exit path), the deterministic backoff,
//     and the retry/quarantine loop end to end via shell-script shim
//     workers (a worker that crashes once and then reports cleanly
//     must be retried to success; one that always crashes must be
//     quarantined into a contained kFailure report);
//   - core/journal.h + core/report_io.h: report serialization must
//     round-trip every verdict-bearing field, and the journal loader
//     must replay finished pairs, tolerate a torn trailing record at
//     *any* byte truncation point (the torn-write property test), and
//     refuse corruption anywhere else.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/stat.h>
#endif

#include "core/journal.h"
#include "core/octopocs.h"
#include "core/parallel_verify.h"
#include "core/report_io.h"
#include "core/supervisor.h"
#include "corpus/pairs.h"
#include "support/subprocess.h"

namespace octopocs::core {
namespace {

using support::RunProcess;
using support::SubprocessLimits;
using support::SubprocessResult;
using support::SubprocessStatus;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "octopocs_isolation_" + name;
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out << text;
}

std::string ReadText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

/// A report with every serialized field away from its default, so a
/// round-trip that drops a field cannot pass by accident.
VerificationReport FullReport() {
  VerificationReport r;
  r.verdict = Verdict::kTriggered;
  r.type = ResultType::kTypeII;
  r.detail = "tricky \"detail\"\nwith\tescapes\x01and bytes";
  r.ep_name = "png_read_chunk";
  r.ep_in_s = 3;
  r.ep_in_t = 5;
  r.ep_encounters_in_s = 2;
  r.bunch_count = 2;
  r.crash_primitive_bytes = 12;
  r.symex_status = symex::SymexStatus::kPocGenerated;
  r.poc_generated = true;
  r.reformed_poc = {0x25, 0x50, 0x00, 0xff};
  r.bunch_offsets = {6, 7, 1000};
  r.observed_trap = vm::TrapKind::kOutOfBounds;
  r.failed_phase = "P2/P3";
  r.deadline_expired = true;
  r.exception_contained = true;
  r.cfg_static_fallback = true;
  r.solver_budget_retried = true;
  r.timings.preprocess_seconds = 0.125;
  r.timings.p1_seconds = 1.5;
  r.timings.p23_seconds = 2.25;
  r.timings.p4_seconds = 0.0625;
  r.timings.total_seconds = 3.9375;
  return r;
}

void ExpectReportsEqual(const VerificationReport& a,
                        const VerificationReport& b) {
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.ep_name, b.ep_name);
  EXPECT_EQ(a.ep_in_s, b.ep_in_s);
  EXPECT_EQ(a.ep_in_t, b.ep_in_t);
  EXPECT_EQ(a.ep_encounters_in_s, b.ep_encounters_in_s);
  EXPECT_EQ(a.bunch_count, b.bunch_count);
  EXPECT_EQ(a.crash_primitive_bytes, b.crash_primitive_bytes);
  EXPECT_EQ(a.symex_status, b.symex_status);
  EXPECT_EQ(a.poc_generated, b.poc_generated);
  EXPECT_EQ(a.reformed_poc, b.reformed_poc);
  EXPECT_EQ(a.bunch_offsets, b.bunch_offsets);
  EXPECT_EQ(a.observed_trap, b.observed_trap);
  EXPECT_EQ(a.failed_phase, b.failed_phase);
  EXPECT_EQ(a.deadline_expired, b.deadline_expired);
  EXPECT_EQ(a.exception_contained, b.exception_contained);
  EXPECT_EQ(a.cfg_static_fallback, b.cfg_static_fallback);
  EXPECT_EQ(a.solver_budget_retried, b.solver_budget_retried);
  EXPECT_DOUBLE_EQ(a.timings.preprocess_seconds, b.timings.preprocess_seconds);
  EXPECT_DOUBLE_EQ(a.timings.p1_seconds, b.timings.p1_seconds);
  EXPECT_DOUBLE_EQ(a.timings.p23_seconds, b.timings.p23_seconds);
  EXPECT_DOUBLE_EQ(a.timings.p4_seconds, b.timings.p4_seconds);
  EXPECT_DOUBLE_EQ(a.timings.total_seconds, b.timings.total_seconds);
}

// -- Report (de)serialization -------------------------------------------------

TEST(ReportIoTest, RoundTripsEveryField) {
  const VerificationReport original = FullReport();
  VerificationReport parsed;
  std::string error;
  ASSERT_TRUE(ParseReport(SerializeReport(original), &parsed, &error))
      << error;
  ExpectReportsEqual(original, parsed);
}

TEST(ReportIoTest, RoundTripsARealPipelineReport) {
  const VerificationReport original = VerifyPair(corpus::BuildPair(1));
  VerificationReport parsed;
  std::string error;
  ASSERT_TRUE(ParseReport(SerializeReport(original), &parsed, &error))
      << error;
  ExpectReportsEqual(original, parsed);
}

TEST(ReportIoTest, WorkerFramingRoundTrips) {
  const VerificationReport original = FullReport();
  // Supervisors tolerate worker chatter before the framed report.
  const std::string wire =
      "some stray diagnostic line\n" + MarshalWorkerReport(original);
  VerificationReport parsed;
  std::string error;
  ASSERT_TRUE(UnmarshalWorkerReport(wire, &parsed, &error)) << error;
  ExpectReportsEqual(original, parsed);
}

TEST(ReportIoTest, TornFramingIsRejected) {
  const std::string wire = MarshalWorkerReport(FullReport());
  VerificationReport parsed;
  // Cut anywhere inside the report line or before the DONE sentinel
  // lands: a worker that died mid-write must never yield a report.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, wire.size() / 2, wire.size() - 2}) {
    std::string error;
    EXPECT_FALSE(
        UnmarshalWorkerReport(wire.substr(0, keep), &parsed, &error))
        << "accepted a torn wire at " << keep;
  }
}

TEST(MiniJsonTest, RejectsTrailingGarbageAndTruncation) {
  minijson::Value value;
  std::string error;
  EXPECT_TRUE(minijson::Parse(R"({"a":[1,2.5,"x"],"b":true})", &value,
                              &error));
  EXPECT_FALSE(minijson::Parse(R"({"a":1} trailing)", &value, &error));
  EXPECT_FALSE(minijson::Parse(R"({"a":)", &value, &error));
  EXPECT_FALSE(minijson::Parse(R"({"a")", &value, &error));
  EXPECT_FALSE(minijson::Parse("", &value, &error));
}

TEST(MiniJsonTest, EscapeRoundTripsControlBytes) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  minijson::Value value;
  std::string error;
  ASSERT_TRUE(minijson::Parse("\"" + minijson::Escape(nasty) + "\"", &value,
                              &error))
      << error;
  EXPECT_EQ(value.text, nasty);
}

// -- Subprocess primitive -----------------------------------------------------

#ifndef _WIN32

TEST(SubprocessTest, CapturesOutputAndExitCode) {
  const SubprocessResult r = RunProcess(
      {"/bin/sh", "-c", "echo hello-from-child; exit 7"}, {});
  EXPECT_EQ(r.status, SubprocessStatus::kExited);
  EXPECT_EQ(r.exit_code, 7);
  EXPECT_NE(r.output.find("hello-from-child"), std::string::npos);
}

TEST(SubprocessTest, LargeOutputDoesNotDeadlock) {
  // Well past any pipe buffer: the parent must drain while the child
  // writes.
  const SubprocessResult r = RunProcess(
      {"/bin/sh", "-c",
       "i=0; while [ $i -lt 400 ]; do "
       "printf '%01024d' 0; i=$((i+1)); done"},
      {});
  EXPECT_EQ(r.status, SubprocessStatus::kExited);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output.size(), 400u * 1024u);
}

TEST(SubprocessTest, ReportsTerminationSignal) {
  const SubprocessResult r =
      RunProcess({"/bin/sh", "-c", "kill -SEGV $$"}, {});
  EXPECT_EQ(r.status, SubprocessStatus::kSignaled);
  EXPECT_EQ(r.term_signal, SIGSEGV);
}

TEST(SubprocessTest, DeadlineKillsAHungChild) {
  SubprocessLimits limits;
  limits.deadline_ms = 100;
  const auto start = std::chrono::steady_clock::now();
  const SubprocessResult r = RunProcess({"/bin/sh", "-c", "sleep 30"}, limits);
  EXPECT_EQ(r.status, SubprocessStatus::kKilledByDeadline);
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            10.0);
}

TEST(SubprocessTest, InterruptFlagKillsTheChild) {
  std::atomic<int> interrupt{0};
  std::thread trip([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    interrupt.store(1);
  });
  const SubprocessResult r =
      RunProcess({"/bin/sh", "-c", "sleep 30"}, {}, &interrupt);
  trip.join();
  EXPECT_EQ(r.status, SubprocessStatus::kInterrupted);
}

TEST(SubprocessTest, EmptyArgvIsASpawnError) {
  const SubprocessResult r = RunProcess({}, {});
  EXPECT_EQ(r.status, SubprocessStatus::kSpawnError);
  EXPECT_FALSE(r.error.empty());
}

TEST(SubprocessTest, ExecFailureExitsWithShellConvention) {
  const SubprocessResult r =
      RunProcess({"/definitely/not/a/real/binary"}, {});
  EXPECT_EQ(r.status, SubprocessStatus::kExited);
  EXPECT_EQ(r.exit_code, 127);
}

#endif  // !_WIN32

// -- Child-outcome classification (pure, no processes) ------------------------

TEST(SupervisorTest, ClassifiesEveryExitPath) {
  VerificationReport report;
  SubprocessResult r;

  r.status = SubprocessStatus::kExited;
  r.exit_code = 0;
  r.output = MarshalWorkerReport(FullReport());
  EXPECT_EQ(ClassifyChild(r, &report), ChildOutcome::kCleanReport);
  EXPECT_EQ(report.verdict, Verdict::kTriggered);

  r.output = "garbage with no framing";
  EXPECT_EQ(ClassifyChild(r, &report), ChildOutcome::kMalformedReport);

  const std::string wire = MarshalWorkerReport(FullReport());
  r.output = wire.substr(0, wire.size() / 2);  // torn mid-write
  EXPECT_EQ(ClassifyChild(r, &report), ChildOutcome::kMalformedReport);

  r.exit_code = 3;
  EXPECT_EQ(ClassifyChild(r, &report), ChildOutcome::kNonzeroExit);

  r = SubprocessResult{};
  r.status = SubprocessStatus::kSignaled;
  for (const int crash : {11 /*SEGV*/, 6 /*ABRT*/, 7 /*BUS*/, 4 /*ILL*/}) {
    r.term_signal = crash;
    EXPECT_EQ(ClassifyChild(r, &report), ChildOutcome::kCrashSignal)
        << "signal " << crash;
  }
  for (const int cap : {24 /*XCPU*/, 9 /*KILL*/}) {
    r.term_signal = cap;
    EXPECT_EQ(ClassifyChild(r, &report), ChildOutcome::kResourceKill)
        << "signal " << cap;
  }

  r.status = SubprocessStatus::kKilledByDeadline;
  EXPECT_EQ(ClassifyChild(r, &report), ChildOutcome::kTimeout);
  r.status = SubprocessStatus::kInterrupted;
  EXPECT_EQ(ClassifyChild(r, &report), ChildOutcome::kInterrupted);
  r.status = SubprocessStatus::kSpawnError;
  EXPECT_EQ(ClassifyChild(r, &report), ChildOutcome::kSpawnError);
}

TEST(SupervisorTest, RetryabilityPolicy) {
  EXPECT_TRUE(IsRetryableOutcome(ChildOutcome::kMalformedReport));
  EXPECT_TRUE(IsRetryableOutcome(ChildOutcome::kNonzeroExit));
  EXPECT_TRUE(IsRetryableOutcome(ChildOutcome::kCrashSignal));
  EXPECT_TRUE(IsRetryableOutcome(ChildOutcome::kSpawnError));
  EXPECT_FALSE(IsRetryableOutcome(ChildOutcome::kCleanReport));
  EXPECT_FALSE(IsRetryableOutcome(ChildOutcome::kResourceKill));
  EXPECT_FALSE(IsRetryableOutcome(ChildOutcome::kTimeout));
  EXPECT_FALSE(IsRetryableOutcome(ChildOutcome::kInterrupted));
}

TEST(SupervisorTest, BackoffIsDeterministicBoundedAndJittered) {
  bool saw_distinct = false;
  for (unsigned attempt = 0; attempt < 12; ++attempt) {
    const std::uint64_t base =
        std::min<std::uint64_t>(20ull << std::min(attempt, 8u), 250);
    for (int pair = 1; pair <= 15; ++pair) {
      const std::uint64_t ms = RetryBackoffMs(pair, attempt);
      EXPECT_EQ(ms, RetryBackoffMs(pair, attempt)) << "nondeterministic";
      EXPECT_GE(ms, base / 2);
      EXPECT_LE(ms, base + base / 2);
      if (ms != RetryBackoffMs((pair % 15) + 1, attempt)) saw_distinct = true;
    }
  }
  EXPECT_TRUE(saw_distinct) << "jitter never varied across pairs";
}

// -- Supervised workers end to end (shell-script shims) -----------------------

#ifndef _WIN32

/// Writes an executable worker shim. The supervisor invokes it as
/// `script pair-worker <idx> ...`; the scripts ignore their argv.
std::string WriteWorkerScript(const std::string& name,
                              const std::string& body) {
  const std::string path = TempPath(name + ".sh");
  WriteText(path, "#!/bin/sh\n" + body);
  ::chmod(path.c_str(), 0755);
  return path;
}

corpus::Pair TinyPair() { return corpus::BuildPair(1); }

TEST(SupervisorTest, CleanWorkerReportIsReturnedVerbatim) {
  const std::string report_path = TempPath("clean_report.txt");
  WriteText(report_path, MarshalWorkerReport(FullReport()));
  IsolationOptions iso;
  iso.worker_binary =
      WriteWorkerScript("clean", "cat " + report_path + "\n");
  iso.max_retries = 0;
  const SupervisedResult r = RunSupervisedPair(TinyPair(), iso, nullptr);
  EXPECT_EQ(r.last_outcome, ChildOutcome::kCleanReport);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_FALSE(r.quarantined);
  ExpectReportsEqual(FullReport(), r.report);
}

TEST(SupervisorTest, CrashingWorkerIsRetriedToSuccess) {
  const std::string report_path = TempPath("retry_report.txt");
  const std::string stamp = TempPath("retry_stamp");
  std::remove(stamp.c_str());
  WriteText(report_path, MarshalWorkerReport(FullReport()));
  IsolationOptions iso;
  iso.worker_binary = WriteWorkerScript(
      "flaky", "if [ ! -e " + stamp + " ]; then : > " + stamp +
                   "; kill -SEGV $$; fi\ncat " + report_path + "\n");
  iso.max_retries = 2;
  const SupervisedResult r = RunSupervisedPair(TinyPair(), iso, nullptr);
  EXPECT_EQ(r.last_outcome, ChildOutcome::kCleanReport);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_FALSE(r.quarantined);
  ExpectReportsEqual(FullReport(), r.report);
}

TEST(SupervisorTest, PersistentCrasherIsQuarantined) {
  IsolationOptions iso;
  iso.worker_binary = WriteWorkerScript("crasher", "kill -SEGV $$\n");
  iso.max_retries = 1;
  const SupervisedResult r = RunSupervisedPair(TinyPair(), iso, nullptr);
  EXPECT_TRUE(r.quarantined);
  EXPECT_EQ(r.attempts, 2u);  // original + one retry
  EXPECT_EQ(r.last_outcome, ChildOutcome::kCrashSignal);
  EXPECT_EQ(r.report.verdict, Verdict::kFailure);
  EXPECT_TRUE(r.report.exception_contained);
  EXPECT_NE(r.report.detail.find("quarantined"), std::string::npos);
}

TEST(SupervisorTest, HungWorkerTimesOutWithoutRetry) {
  IsolationOptions iso;
  iso.worker_binary = WriteWorkerScript("hang", "sleep 30\n");
  iso.max_retries = 3;
  iso.deadline_ms = 100;
  const SupervisedResult r = RunSupervisedPair(TinyPair(), iso, nullptr);
  EXPECT_EQ(r.last_outcome, ChildOutcome::kTimeout);
  EXPECT_EQ(r.attempts, 1u);  // the cap is deterministic: never retried
  EXPECT_TRUE(r.report.deadline_expired);
}

TEST(SupervisorTest, InterruptDrainsWithoutSpawning) {
  IsolationOptions iso;
  iso.worker_binary = WriteWorkerScript("never", "exit 0\n");
  const std::atomic<int> interrupt{1};
  const SupervisedResult r = RunSupervisedPair(TinyPair(), iso, &interrupt);
  EXPECT_TRUE(r.interrupted);
  EXPECT_EQ(r.attempts, 0u);
  EXPECT_EQ(r.report.verdict, Verdict::kFailure);
}

#endif  // !_WIN32

// -- Crash journal ------------------------------------------------------------

TEST(JournalTest, FingerprintCoversVerdictBearingKnobs) {
  const PipelineOptions base;
  const std::string fp =
      CorpusOptionsFingerprint(base, false, 15, 0, false, 0);
  EXPECT_EQ(fp, CorpusOptionsFingerprint(base, false, 15, 0, false, 0));
  EXPECT_NE(fp, CorpusOptionsFingerprint(base, true, 15, 0, false, 0));
  EXPECT_NE(fp, CorpusOptionsFingerprint(base, false, 6, 0, false, 0));
  EXPECT_NE(fp, CorpusOptionsFingerprint(base, false, 15, 500, false, 0));
  EXPECT_NE(fp, CorpusOptionsFingerprint(base, false, 15, 0, true, 0));
  EXPECT_NE(fp, CorpusOptionsFingerprint(base, false, 15, 0, true, 256));
  PipelineOptions tweaked = base;
  tweaked.adaptive_theta = true;
  EXPECT_NE(fp, CorpusOptionsFingerprint(tweaked, false, 15, 0, false, 0));
}

#ifndef _WIN32

TEST(JournalTest, WritesAndReloadsStartedAndFinished) {
  const std::string path = TempPath("basic.jsonl");
  std::string error;
  auto journal = Journal::Create(path, "cafe0123", 15, &error);
  ASSERT_NE(journal, nullptr) << error;
  journal->Started(1, 1);
  journal->Finished(1, FullReport());
  journal->Started(2, 1);
  journal.reset();  // close + final fsync

  const auto state = LoadJournal(path, &error);
  ASSERT_TRUE(state.has_value()) << error;
  EXPECT_EQ(state->options_hash, "cafe0123");
  EXPECT_EQ(state->pair_count, 15u);
  EXPECT_FALSE(state->torn_tail);
  ASSERT_EQ(state->finished.size(), 1u);
  ExpectReportsEqual(FullReport(), state->finished.at(1));
  ASSERT_EQ(state->started_unfinished.size(), 1u);
  EXPECT_EQ(state->started_unfinished.count(2), 1u);
}

TEST(JournalTest, RefusesCorruptionAwayFromTheTail) {
  const std::string path = TempPath("corrupt.jsonl");
  std::string error;

  WriteText(path, "not json\n{\"type\":\"started\",\"pair\":1}\n");
  EXPECT_FALSE(LoadJournal(path, &error).has_value());

  WriteText(path,
            "{\"type\":\"header\",\"version\":1,\"options_hash\":\"x\","
            "\"pair_count\":2}\n"
            "garbage record\n"
            "{\"type\":\"started\",\"pair\":1,\"attempt\":1}\n");
  EXPECT_FALSE(LoadJournal(path, &error).has_value());
  EXPECT_NE(error.find("malformed"), std::string::npos);

  // Wrong version, duplicate finished, unknown type: all hard errors.
  WriteText(path,
            "{\"type\":\"header\",\"version\":99,\"options_hash\":\"x\","
            "\"pair_count\":2}\n");
  EXPECT_FALSE(LoadJournal(path, &error).has_value());
  WriteText(path,
            "{\"type\":\"header\",\"version\":1,\"options_hash\":\"x\","
            "\"pair_count\":2}\n"
            "{\"type\":\"mystery\"}\n"
            "{\"type\":\"started\",\"pair\":1,\"attempt\":1}\n");
  EXPECT_FALSE(LoadJournal(path, &error).has_value());
}

TEST(JournalTest, EveryTruncationOfTheTailRecordResumesCleanly) {
  // Build a reference journal, then replay every possible torn write of
  // its final record: load must succeed, report the torn tail, and
  // Resume must heal it so an appended record lands on a clean line.
  const std::string path = TempPath("torn.jsonl");
  std::string error;
  {
    auto journal = Journal::Create(path, "feedbeef", 15, &error);
    ASSERT_NE(journal, nullptr) << error;
    journal->Started(1, 1);
    journal->Finished(1, FullReport());
    journal->Started(2, 1);
    journal->Finished(2, FullReport());
  }
  const std::string full = ReadText(path);
  ASSERT_FALSE(full.empty());
  // Offset where the last record begins (after the 4th newline).
  std::size_t tail_start = full.size() - 1;
  while (tail_start > 0 && full[tail_start - 1] != '\n') --tail_start;

  for (std::size_t keep = tail_start; keep < full.size(); ++keep) {
    WriteText(path, full.substr(0, keep));
    auto state = LoadJournal(path, &error);
    ASSERT_TRUE(state.has_value())
        << "truncation at " << keep << ": " << error;
    EXPECT_EQ(state->torn_tail, keep != tail_start) << keep;
    EXPECT_EQ(state->valid_bytes, tail_start) << keep;
    ASSERT_EQ(state->finished.size(), 1u) << keep;
    EXPECT_EQ(state->started_unfinished.count(2), 1u) << keep;

    auto journal = Journal::Resume(path, *state, &error);
    ASSERT_NE(journal, nullptr) << error;
    journal->Finished(2, FullReport());
    journal.reset();
    auto healed = LoadJournal(path, &error);
    ASSERT_TRUE(healed.has_value()) << error;
    EXPECT_FALSE(healed->torn_tail);
    EXPECT_EQ(healed->finished.size(), 2u);
  }
}

TEST(JournalTest, CorpusRunJournalsAndResumeReplaysWithoutRerunning) {
  const std::string path = TempPath("corpus.jsonl");
  const std::vector<corpus::Pair> pairs = {corpus::BuildPair(1),
                                           corpus::BuildPair(4)};
  const PipelineOptions options;
  std::string error;

  std::vector<VerificationReport> first;
  {
    auto journal = Journal::Create(path, "deadf00d", pairs.size(), &error);
    ASSERT_NE(journal, nullptr) << error;
    CorpusRunConfig config;
    config.journal = journal.get();
    first = VerifyCorpus(pairs, options, config);
  }

  auto state = LoadJournal(path, &error);
  ASSERT_TRUE(state.has_value()) << error;
  ASSERT_EQ(state->finished.size(), pairs.size());
  EXPECT_TRUE(state->started_unfinished.empty());

  // Resume with every pair finished and a 1ms pair deadline: only a
  // replay (no re-execution) can reproduce the original reports — a
  // re-run would come back deadline_expired.
  CorpusRunConfig resume;
  resume.pair_deadline_ms = 1;
  resume.resume_finished = &state->finished;
  const auto replayed = VerifyCorpus(pairs, options, resume);
  ASSERT_EQ(replayed.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ExpectReportsEqual(first[i], replayed[i]);
  }
}

#endif  // !_WIN32

}  // namespace
}  // namespace octopocs::core
