// ByteSolver: satisfiable systems produce verifying models; unsatisfiable
// systems are proven Unsat (that verdict becomes the paper's Type-III).
#include <gtest/gtest.h>

#include "support/rng.h"
#include "symex/solver.h"

namespace octopocs::symex {
namespace {

using vm::Op;

ExprRef In(std::uint32_t o) { return MakeInput(o); }
ExprRef C(std::uint64_t v) { return MakeConst(v); }

TEST(Solver, DirectEquality) {
  ByteSolver solver;
  solver.AddEq(In(3), 0x41);
  const auto r = solver.Solve();
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model.at(3), 0x41);
}

TEST(Solver, MultiByteFieldEquality) {
  // Little-endian 16-bit field (in[0] | in[1]<<8) == 0x013D — the TIFF
  // tag shape from the motivating example.
  ByteSolver solver;
  const auto field =
      MakeBinOp(Op::kOr, In(0), MakeBinOp(Op::kShl, In(1), C(8)));
  solver.AddEq(field, 0x013D);
  const auto r = solver.Solve();
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model.at(0), 0x3D);
  EXPECT_EQ(r.model.at(1), 0x01);
}

TEST(Solver, SumAcrossBytes) {
  ByteSolver solver;
  solver.AddEq(MakeBinOp(Op::kAdd, In(0), In(1)), 0x110);
  const auto r = solver.Solve();
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model.at(0) + r.model.at(1), 0x110);
}

TEST(Solver, RangeConstraintPrefersZero) {
  ByteSolver solver;
  solver.Add(MakeBinOp(Op::kCmpLtU, In(5), C(0x10)));
  const auto r = solver.Solve();
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_LT(r.model.at(5), 0x10);
}

TEST(Solver, ContradictionIsUnsat) {
  ByteSolver solver;
  solver.AddEq(In(0), 1);
  solver.AddEq(In(0), 2);
  EXPECT_EQ(solver.Solve().status, SolveStatus::kUnsat);
}

TEST(Solver, ImpossibleByteValueIsUnsat) {
  ByteSolver solver;
  solver.AddEq(In(0), 0x1234);  // a byte can never equal 0x1234
  EXPECT_EQ(solver.Solve().status, SolveStatus::kUnsat);
}

TEST(Solver, CrossVariableConflictIsUnsat) {
  // in[0] < in[1], in[1] < in[0] — no ordering satisfies both.
  ByteSolver solver;
  solver.Add(MakeBinOp(Op::kCmpLtU, In(0), In(1)));
  solver.Add(MakeBinOp(Op::kCmpLtU, In(1), In(0)));
  EXPECT_EQ(solver.Solve().status, SolveStatus::kUnsat);
}

TEST(Solver, PatchGuardConflictShape) {
  // The Idx-13/14 mechanism: a bunch pins a length field to a large
  // value while the patched T requires it below a bound.
  ByteSolver solver;
  const auto len =
      MakeBinOp(Op::kOr, In(4), MakeBinOp(Op::kShl, In(5), C(8)));
  solver.AddEq(len, 0xFFFF);                       // crash primitive
  solver.Add(MakeBinOp(Op::kCmpLtU, len, C(0x100)));  // patch guard
  EXPECT_EQ(solver.Solve().status, SolveStatus::kUnsat);
}

TEST(Solver, PinsInteractWithConstraints) {
  ByteSolver solver;
  solver.Pin(2, 7);
  solver.Add(MakeBinOp(Op::kCmpEq, MakeBinOp(Op::kAdd, In(2), In(3)), C(10)));
  const auto r = solver.Solve();
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model.at(2), 7);
  EXPECT_EQ(r.model.at(3), 3);
}

TEST(Solver, SolveWithExtraConstraints) {
  ByteSolver solver;
  solver.Add(MakeBinOp(Op::kCmpLtU, In(0), C(4)));
  const auto sat = solver.SolveWith({MakeBinOp(Op::kCmpEq, In(0), C(3))});
  EXPECT_EQ(sat.status, SolveStatus::kSat);
  const auto unsat = solver.SolveWith({MakeBinOp(Op::kCmpEq, In(0), C(9))});
  EXPECT_EQ(unsat.status, SolveStatus::kUnsat);
}

TEST(Solver, EmptySystemIsTriviallySat) {
  ByteSolver solver;
  EXPECT_EQ(solver.Solve().status, SolveStatus::kSat);
}

TEST(Solver, BudgetYieldsUnknown) {
  // Five coupled variables and a near-exhaustive search with a 1-step
  // budget must bail out as Unknown rather than loop forever.
  SolverOptions opts;
  opts.max_steps = 1;
  ByteSolver solver(opts);
  ExprRef sum = In(0);
  for (std::uint32_t i = 1; i < 5; ++i) {
    sum = MakeBinOp(Op::kAdd, std::move(sum), In(i));
  }
  solver.AddEq(sum, 600);
  EXPECT_EQ(solver.Solve().status, SolveStatus::kUnknown);
}

// Property: random satisfiable systems (generated from a hidden model)
// always solve, and the returned model verifies every constraint.
class SolverSoundness : public ::testing::TestWithParam<int> {};

TEST_P(SolverSoundness, ModelVerifies) {
  Rng rng(1000 + GetParam());
  // Hidden assignment over up to 8 variables.
  const std::size_t n_vars = 2 + rng.Below(7);
  Model hidden;
  for (std::size_t i = 0; i < n_vars; ++i) {
    hidden[static_cast<std::uint32_t>(i)] =
        static_cast<std::uint8_t>(rng.Next());
  }
  // Derive constraints that the hidden model satisfies by construction.
  std::vector<ExprRef> constraints;
  ByteSolver solver;
  const std::size_t n_constraints = 1 + rng.Below(8);
  for (std::size_t c = 0; c < n_constraints; ++c) {
    const auto a = static_cast<std::uint32_t>(rng.Below(n_vars));
    const auto b = static_cast<std::uint32_t>(rng.Below(n_vars));
    ExprRef e;
    switch (rng.Below(4)) {
      case 0:
        e = MakeBinOp(Op::kAdd, In(a), In(b));
        break;
      case 1:
        e = MakeBinOp(Op::kXor, In(a), In(b));
        break;
      case 2:
        e = MakeBinOp(Op::kOr, In(a), MakeBinOp(Op::kShl, In(b), C(8)));
        break;
      default:
        e = MakeBinOp(Op::kMul, In(a), C(1 + rng.Below(5)));
        break;
    }
    const std::uint64_t value = Eval(e, hidden);
    const auto constraint = MakeBinOp(Op::kCmpEq, e, C(value));
    constraints.push_back(constraint);
    solver.Add(constraint);
  }
  const auto r = solver.Solve();
  ASSERT_EQ(r.status, SolveStatus::kSat);
  for (const auto& c : constraints) {
    EXPECT_NE(Eval(c, r.model), 0u) << ToString(c);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, SolverSoundness,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace octopocs::symex
