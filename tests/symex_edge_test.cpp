// Symbolic executor edge cases: witness generation, symbolic division,
// symbolic seek/indirect-call concretization, fsize handling, and the
// per-path agreement between witness inputs and concrete execution.
#include <gtest/gtest.h>

#include "cfg/cfg.h"
#include "support/rng.h"
#include "symex/executor.h"
#include "vm/asm.h"
#include "vm/interp.h"

namespace octopocs::symex {
namespace {

using vm::Assemble;
using vm::Program;

/// Observer asserting whether a named function was entered.
struct EntryWatch : vm::ExecutionObserver {
  vm::FuncId target;
  bool entered = false;
  void OnCallEnter(vm::FuncId callee, std::span<const std::uint64_t>,
                   const vm::Instr*) override {
    if (callee == target) entered = true;
  }
};

bool WitnessReachesEp(const Program& t, const char* ep_name,
                      const Bytes& witness) {
  EntryWatch watch;
  watch.target = t.FindFunction(ep_name);
  vm::Interpreter interp(t, witness);
  interp.AddObserver(&watch);
  (void)interp.Run();
  return watch.entered;
}

TEST(Witness, DrivesConcreteExecutionToEp) {
  const Program t = Assemble(R"(
    func main()
      movi %n, 8
      alloc %buf, %n
      movi %four, 4
      read %got, %buf, %four
      load.4 %magic, %buf, 0
      movi %want, 0x21464c45       ; "ELF!"
      cmpeq %ok, %magic, %want
      br %ok, good, bad
    good:
      read %g2, %buf, %four
      load.1 %mode, %buf, 0
      movi %m3, 3
      cmpeq %is3, %mode, %m3
      br %is3, go, bad
    go:
      call %v, ep_fn(%mode)
      ret %v
    bad:
      ret %magic
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"));
  const auto r = exec.ReachEp(/*directed=*/true);
  ASSERT_EQ(r.status, SymexStatus::kReachedEp);
  ASSERT_GE(r.poc.size(), 5u);
  EXPECT_EQ(r.poc[0], 'E');
  EXPECT_EQ(r.poc[4], 3);
  EXPECT_TRUE(WitnessReachesEp(t, "ep_fn", r.poc));
}

TEST(SymexEdge, SymbolicDivisorGetsNonZeroConstraint) {
  // Reaching ep requires surviving a division by an input byte; the
  // witness must carry a nonzero divisor.
  const Program t = Assemble(R"(
    func main()
      movi %n, 2
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %d, %buf, 0
      movi %k, 100
      divu %q, %k, %d             ; traps if d == 0
      call %v, ep_fn(%q)
      ret %v
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"));
  const auto r = exec.ReachEp(true);
  ASSERT_EQ(r.status, SymexStatus::kReachedEp);
  ASSERT_GE(r.poc.size(), 1u);
  EXPECT_NE(r.poc[0], 0);
  EXPECT_TRUE(WitnessReachesEp(t, "ep_fn", r.poc));
}

TEST(SymexEdge, SymbolicSeekIsConcretized) {
  // The seek target depends on an input byte; concretization must pin
  // it consistently so the witness agrees with concrete execution.
  // Concretization is eager (angr-style): without guidance it would
  // pick offset 0 — which collides with the seek byte itself — so the
  // hint mechanism (how the pipeline passes the original PoC) steers it
  // to a workable offset.
  const Program t = Assemble(R"(
    func main()
      movi %n, 4
      alloc %buf, %n
      movi %one, 1
      read %got, %buf, %one
      load.1 %off, %buf, 0
      movi %cap, 8
      cmpltu %ok, %off, %cap
      assert %ok
      seek %off
      read %g2, %buf, %one
      load.1 %tag, %buf, 0
      movi %t7, 7
      cmpeq %is7, %tag, %t7
      br %is7, go, out
    go:
      call %v, ep_fn(%tag)
      ret %v
    out:
      ret %tag
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  ExecutorOptions opts;
  opts.solver.hints = {{0, 3}};  // "the original PoC seeked to 3"
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"), opts);
  const auto r = exec.ReachEp(true);
  ASSERT_EQ(r.status, SymexStatus::kReachedEp) << r.detail;
  EXPECT_TRUE(WitnessReachesEp(t, "ep_fn", r.poc));
}

TEST(SymexEdge, IndirectCallTargetConcretizes) {
  // ep is reached through an icall whose target comes from fnaddr
  // arithmetic — concrete to the executor even without CFG help.
  const Program t = Assemble(R"(
    func main()
      fnaddr %f, ep_fn
      movi %zero, 0
      icall %v, %f(%zero)
      ret %v
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"));
  const auto r = exec.ReachEp(true);
  EXPECT_EQ(r.status, SymexStatus::kReachedEp);
}

TEST(SymexEdge, FsizeObservationPadsPocToModelSize) {
  const Program t = Assemble(R"(
    func main()
      fsize %n
      movi %min, 4
      cmpgeu %ok, %n, %min
      assert %ok
      call %v, ep_fn(%n)
      ret %v
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  ExecutorOptions opts;
  opts.max_input_size = 64;
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"), opts);
  const auto r = exec.ReachEp(true);
  ASSERT_EQ(r.status, SymexStatus::kReachedEp);
  // fsize was observed: the witness is padded to the symbolic size so
  // concrete fsize agrees with what the executor assumed.
  EXPECT_EQ(r.poc.size(), 64u);
  EXPECT_TRUE(WitnessReachesEp(t, "ep_fn", r.poc));
}

TEST(SymexEdge, CallDepthLimitKillsRunawayRecursion) {
  const Program t = Assemble(R"(
    func main()
      movi %x, 0
      call %v, rec(%x)
      call %w, ep_fn(%v)
      ret %w
    func rec(a)
      call %v, rec(%a)
      ret %v
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  ExecutorOptions opts;
  opts.max_call_depth = 16;
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"), opts);
  const auto r = exec.ReachEp(true);
  // The recursion never returns: ep is unreachable in practice.
  EXPECT_NE(r.status, SymexStatus::kReachedEp);
}

// Property: witnesses generalize — random guard chains over random
// byte positions must always yield a witness that concretely enters ep.
class WitnessProperty : public ::testing::TestWithParam<int> {};

TEST_P(WitnessProperty, RandomGuardChainsAreSolved) {
  Rng rng(42'000 + GetParam());
  const unsigned n_guards = 1 + rng.Below(5);
  // Distinct guard offsets: two contradictory guards on the same byte
  // would make ep *legitimately* unreachable.
  std::vector<unsigned> offsets;
  for (unsigned i = 0; i < 16; ++i) offsets.push_back(i);
  for (unsigned i = 15; i > 0; --i) {
    std::swap(offsets[i], offsets[rng.Below(i + 1)]);
  }
  std::string src = R"(
    func main()
      movi %n, 16
      alloc %buf, %n
      read %got, %buf, %n
  )";
  for (unsigned g = 0; g < n_guards; ++g) {
    const unsigned off = offsets[g];
    const unsigned val = rng.Below(256);
    const std::string i = std::to_string(g);
    src += "    load.1 %c" + i + ", %buf, " + std::to_string(off) + "\n";
    src += "    movi %k" + i + ", " + std::to_string(val) + "\n";
    // Alternate equality and ordering guards.
    src += std::string("    ") + (g % 2 == 0 ? "cmpeq" : "cmpleu") + " %ok" +
           i + ", %c" + i + ", %k" + i + "\n";
    src += "    assert %ok" + i + "\n";
  }
  src += R"(
      movi %zero, 0
      call %v, ep_fn(%zero)
      ret %v
    func ep_fn(x)
      ret %x
  )";
  const Program t = Assemble(src);
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"));
  const auto r = exec.ReachEp(true);
  ASSERT_EQ(r.status, SymexStatus::kReachedEp) << r.detail;
  EXPECT_TRUE(WitnessReachesEp(t, "ep_fn", r.poc));
}

INSTANTIATE_TEST_SUITE_P(RandomGuards, WitnessProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace octopocs::symex
