// Interpreter semantics: arithmetic, memory/trap model, file I/O,
// calls, observers.
#include <gtest/gtest.h>

#include "vm/asm.h"
#include "vm/interp.h"

namespace octopocs::vm {
namespace {

ExecResult RunSrc(std::string_view src, ByteView input = {},
               ExecOptions opts = {}) {
  return RunProgram(Assemble(src), input, opts);
}

TEST(Interp, ReturnsValueFromMain) {
  const auto r = RunSrc(R"(
    func main()
      movi %x, 41
      addi %x, %x, 1
      ret %x
  )");
  EXPECT_EQ(r.trap, TrapKind::kNone);
  EXPECT_EQ(r.return_value, 42u);
}

TEST(Interp, ArithmeticWrapsAndCompares) {
  const auto r = RunSrc(R"(
    func main()
      movi %a, 0xffffffffffffffff
      movi %b, 3
      add %s, %a, %b          ; wraps to 2
      movi %two, 2
      cmpeq %ok, %s, %two
      assert %ok
      sub %d, %b, %a          ; 3 - (2^64-1) = 4
      movi %four, 4
      cmpeq %ok2, %d, %four
      assert %ok2
      mul %m, %b, %four       ; 12
      shl %sh, %ok, %b        ; 1 << 3 = 8
      or %o, %m, %sh          ; 12
      movi %twelve, 12
      cmpeq %ok3, %o, %twelve
      assert %ok3
      cmpltu %lt, %two, %four
      assert %lt
      ret %o
  )");
  EXPECT_EQ(r.trap, TrapKind::kNone);
  EXPECT_EQ(r.return_value, 12u);
}

TEST(Interp, DivByZeroTraps) {
  const auto r = RunSrc(R"(
    func main()
      movi %a, 10
      movi %z, 0
      divu %q, %a, %z
      ret %q
  )");
  EXPECT_EQ(r.trap, TrapKind::kDivByZero);
}

TEST(Interp, HeapStoreLoadRoundTrip) {
  const auto r = RunSrc(R"(
    func main()
      movi %n, 16
      alloc %p, %n
      movi %v, 0xcafe
      store.2 %v, %p, 4
      load.2 %w, %p, 4
      ret %w
  )");
  EXPECT_EQ(r.trap, TrapKind::kNone);
  EXPECT_EQ(r.return_value, 0xCAFEu);
}

TEST(Interp, LoadZeroExtends) {
  const auto r = RunSrc(R"(
    func main()
      movi %n, 8
      alloc %p, %n
      movi %v, 0xffffffffffffffff
      store.8 %v, %p, 0
      load.1 %w, %p, 3
      ret %w
  )");
  EXPECT_EQ(r.return_value, 0xFFu);
}

TEST(Interp, HeapOverflowTraps) {
  const auto r = RunSrc(R"(
    func main()
      movi %n, 8
      alloc %p, %n
      movi %v, 1
      store.1 %v, %p, 8     ; one past the end
      ret %v
  )");
  EXPECT_EQ(r.trap, TrapKind::kOutOfBounds);
  EXPECT_GE(r.fault_addr, kHeapBase);
}

TEST(Interp, NullDerefTraps) {
  const auto r = RunSrc(R"(
    func main()
      movi %p, 0
      load.4 %v, %p, 16
      ret %v
  )");
  EXPECT_EQ(r.trap, TrapKind::kNullDeref);
}

TEST(Interp, UseAfterFreeTraps) {
  const auto r = RunSrc(R"(
    func main()
      movi %n, 8
      alloc %p, %n
      free %p
      load.1 %v, %p, 0
      ret %v
  )");
  EXPECT_EQ(r.trap, TrapKind::kUseAfterFree);
}

TEST(Interp, DoubleFreeTraps) {
  const auto r = RunSrc(R"(
    func main()
      movi %n, 8
      alloc %p, %n
      free %p
      free %p
      ret %n
  )");
  EXPECT_EQ(r.trap, TrapKind::kDoubleFree);
}

TEST(Interp, RodataReadableNotWritable) {
  const auto ok = RunSrc(R"(
    data magic:
      .str "MJPG"
    func main()
      movi %p, @magic
      load.1 %v, %p, 0
      ret %v
  )");
  EXPECT_EQ(ok.trap, TrapKind::kNone);
  EXPECT_EQ(ok.return_value, static_cast<std::uint64_t>('M'));

  const auto bad = RunSrc(R"(
    data magic:
      .str "MJPG"
    func main()
      movi %p, @magic
      movi %v, 0
      store.1 %v, %p, 0
      ret %v
  )");
  EXPECT_EQ(bad.trap, TrapKind::kOutOfBounds);
}

TEST(Interp, FileReadAdvancesPosition) {
  const Bytes input{'A', 'B', 'C', 'D', 'E'};
  const auto r = RunSrc(R"(
    func main()
      movi %n, 16
      alloc %buf, %n
      movi %two, 2
      read %got1, %buf, %two
      tell %pos
      read %got2, %buf, %two
      load.1 %c, %buf, 0     ; 'C' after second read
      ret %c
  )", input);
  EXPECT_EQ(r.trap, TrapKind::kNone);
  EXPECT_EQ(r.return_value, static_cast<std::uint64_t>('C'));
}

TEST(Interp, FileReadShortAtEof) {
  const Bytes input{'X'};
  const auto r = RunSrc(R"(
    func main()
      movi %n, 16
      alloc %buf, %n
      movi %want, 8
      read %got, %buf, %want
      ret %got
  )", input);
  EXPECT_EQ(r.return_value, 1u);
}

TEST(Interp, SeekRepositionsReads) {
  const Bytes input{'A', 'B', 'C', 'D'};
  const auto r = RunSrc(R"(
    func main()
      movi %n, 4
      alloc %buf, %n
      movi %three, 3
      seek %three
      movi %one, 1
      read %got, %buf, %one
      load.1 %c, %buf, 0
      ret %c
  )", input);
  EXPECT_EQ(r.return_value, static_cast<std::uint64_t>('D'));
}

TEST(Interp, FileSizeVisible) {
  const Bytes input(123, 0);
  const auto r = RunSrc(R"(
    func main()
      fsize %n
      ret %n
  )", input);
  EXPECT_EQ(r.return_value, 123u);
}

TEST(Interp, CallPassesArgsAndReturns) {
  const auto r = RunSrc(R"(
    func main()
      movi %x, 20
      movi %y, 22
      call %s, addup(%x, %y)
      ret %s
    func addup(a, b)
      add %r, %a, %b
      ret %r
  )");
  EXPECT_EQ(r.trap, TrapKind::kNone);
  EXPECT_EQ(r.return_value, 42u);
}

TEST(Interp, IndirectCallViaFnAddr) {
  const auto r = RunSrc(R"(
    func main()
      fnaddr %f, square
      movi %x, 7
      icall %v, %f(%x)
      ret %v
    func square(a)
      mul %r, %a, %a
      ret %r
  )");
  EXPECT_EQ(r.return_value, 49u);
}

TEST(Interp, IndirectCallBadTargetTraps) {
  const auto r = RunSrc(R"(
    func main()
      movi %f, 999
      icall %v, %f()
      ret %v
  )");
  EXPECT_EQ(r.trap, TrapKind::kBadIndirectCall);
}

TEST(Interp, RecursionHitsStackLimit) {
  ExecOptions opts;
  opts.max_call_depth = 32;
  const auto r = RunSrc(R"(
    func main()
      movi %x, 0
      call %v, rec(%x)
      ret %v
    func rec(a)
      call %v, rec(%a)
      ret %v
  )", {}, opts);
  EXPECT_EQ(r.trap, TrapKind::kStackOverflow);
}

TEST(Interp, InfiniteLoopExhaustsFuel) {
  ExecOptions opts;
  opts.fuel = 10'000;
  const auto r = RunSrc(R"(
    func main()
    spin:
      nop
      jmp spin
  )", {}, opts);
  EXPECT_EQ(r.trap, TrapKind::kFuelExhausted);
}

TEST(Interp, AssertFailureCapturesBacktrace) {
  const auto r = RunSrc(R"(
    func main()
      movi %x, 1
      call %v, outer(%x)
      ret %v
    func outer(a)
      call %v, inner(%a)
      ret %v
    func inner(a)
      movi %z, 0
      assert %z
      ret %a
  )");
  ASSERT_EQ(r.trap, TrapKind::kAbort);
  ASSERT_EQ(r.backtrace.size(), 3u);
  // Outermost first: main, outer, inner.
  const Program p = Assemble(R"(
    func main()
      ret
  )");
  (void)p;
  EXPECT_EQ(r.backtrace[0].fn, 0u);
  EXPECT_EQ(r.backtrace[1].fn, 1u);
  EXPECT_EQ(r.backtrace[2].fn, 2u);
}

TEST(Interp, HeapLimitTraps) {
  ExecOptions opts;
  opts.heap_limit = 1024;
  const auto r = RunSrc(R"(
    func main()
      movi %n, 4096
      alloc %p, %n
      ret %p
  )", {}, opts);
  EXPECT_EQ(r.trap, TrapKind::kOutOfMemory);
}

TEST(Interp, BranchTakesBothDirections) {
  const char* src = R"(
    func main()
      movi %n, 1
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %c, %buf, 0
      movi %k, 65
      cmpeq %isa, %c, %k
      br %isa, yes, no
    yes:
      movi %r, 100
      ret %r
    no:
      movi %r, 200
      ret %r
  )";
  EXPECT_EQ(RunSrc(src, Bytes{'A'}).return_value, 100u);
  EXPECT_EQ(RunSrc(src, Bytes{'B'}).return_value, 200u);
}

// Observer coverage: file reads, calls, block transfers, indirect calls.
class RecordingObserver : public ExecutionObserver {
 public:
  void OnCallEnter(FuncId callee, std::span<const std::uint64_t>,
                   const Instr*) override {
    calls.push_back(callee);
  }
  void OnFileRead(std::uint64_t, std::uint64_t off, std::uint64_t n) override {
    reads.emplace_back(off, n);
  }
  void OnBlockTransfer(FuncId, BlockId from, BlockId to) override {
    edges.emplace_back(from, to);
  }
  void OnIndirectCall(FuncId, BlockId, std::size_t, FuncId target) override {
    icall_targets.push_back(target);
  }
  std::vector<FuncId> calls;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> reads;
  std::vector<std::pair<BlockId, BlockId>> edges;
  std::vector<FuncId> icall_targets;
};

TEST(Interp, ObserverSeesEvents) {
  const Program p = Assemble(R"(
    func main()
      movi %n, 4
      alloc %buf, %n
      read %got, %buf, %n
      read %got2, %buf, %n
      fnaddr %f, helper
      icall %v, %f()
      br %v, yes, no
    yes:
      ret %v
    no:
      ret
    func helper()
      movi %r, 1
      ret %r
  )");
  const Bytes input{1, 2, 3, 4, 5, 6};
  RecordingObserver obs;
  Interpreter interp(p, input);
  interp.AddObserver(&obs);
  const auto r = interp.Run();
  EXPECT_EQ(r.trap, TrapKind::kNone);
  // main enter + helper enter.
  ASSERT_EQ(obs.calls.size(), 2u);
  EXPECT_EQ(obs.calls[1], p.FindFunction("helper"));
  ASSERT_EQ(obs.reads.size(), 2u);
  EXPECT_EQ(obs.reads[0], (std::pair<std::uint64_t, std::uint64_t>{0, 4}));
  EXPECT_EQ(obs.reads[1], (std::pair<std::uint64_t, std::uint64_t>{4, 2}));
  ASSERT_EQ(obs.icall_targets.size(), 1u);
  EXPECT_FALSE(obs.edges.empty());
}

TEST(Interp, ValidateRejectsBadPrograms) {
  Program p;
  EXPECT_TRUE(Validate(p).has_value());  // no functions

  p.name = "x";
  Function f;
  f.name = "main";
  Block b;
  b.term = Terminator::Jump(7);  // out of range target
  f.blocks.push_back(b);
  p.functions.push_back(f);
  p.entry = 0;
  EXPECT_TRUE(Validate(p).has_value());

  p.functions[0].blocks[0].term = Terminator::Ret();
  EXPECT_FALSE(Validate(p).has_value());
}

TEST(Interp, AllocationsGetGuardGaps) {
  // Consecutive allocations must not be adjacent; the guard gap is what
  // turns small overflows into traps instead of silent corruption.
  const auto r = RunSrc(R"(
    func main()
      movi %n, 16
      alloc %a, %n
      alloc %b, %n
      sub %gap, %b, %a
      ret %gap
  )");
  EXPECT_GE(r.return_value, 16u + kGuardGap);
}

}  // namespace
}  // namespace octopocs::vm

namespace octopocs::vm {
namespace {

TEST(Interp, MmapExposesInputReadOnly) {
  const Bytes input{'E', 'X', 'I', 'F', 9};
  const auto ok = RunSrc(R"(
    func main()
      mmap %base
      load.4 %m, %base, 0
      load.1 %n, %base, 4
      add %sum, %m, %n
      ret %n
  )", input);
  EXPECT_EQ(ok.trap, TrapKind::kNone);
  EXPECT_EQ(ok.return_value, 9u);

  const auto oob = RunSrc(R"(
    func main()
      mmap %base
      load.1 %v, %base, 100      ; beyond the 5-byte file
      ret %v
  )", input);
  EXPECT_EQ(oob.trap, TrapKind::kOutOfBounds);

  const auto wr = RunSrc(R"(
    func main()
      mmap %base
      movi %v, 1
      store.1 %v, %base, 0       ; the mapping is read-only
      ret %v
  )", input);
  EXPECT_EQ(wr.trap, TrapKind::kOutOfBounds);
}

TEST(Interp, MmapAndReadShareTheSameBytes) {
  const Bytes input{1, 2, 3, 4};
  const auto r = RunSrc(R"(
    func main()
      movi %n, 4
      alloc %buf, %n
      read %got, %buf, %n
      mmap %base
      load.1 %a, %buf, 2
      load.1 %b, %base, 2
      cmpeq %same, %a, %b
      assert %same
      ret %same
  )", input);
  EXPECT_EQ(r.trap, TrapKind::kNone);
  EXPECT_EQ(r.return_value, 1u);
}

}  // namespace
}  // namespace octopocs::vm
