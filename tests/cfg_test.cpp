// CFG construction, backward path finding, dynamic indirect-call edges,
// back-edge (loop) detection, and the simulated angr defect.
#include <gtest/gtest.h>

#include "cfg/cfg.h"
#include "vm/asm.h"

namespace octopocs::cfg {
namespace {

using vm::Assemble;
using vm::Program;

TEST(Cfg, DirectCallEdgesReachEp) {
  const Program p = Assemble(R"(
    func main()
      movi %x, 1
      call %v, middle(%x)
      ret %v
    func middle(a)
      call %v, target(%a)
      ret %v
    func target(a)
      ret %a
    func unrelated()
      ret
  )");
  const Cfg cfg = Cfg::Build(p);
  const DistanceMap map = cfg.BackwardReachability(p.FindFunction("target"));
  EXPECT_TRUE(map.EntryReaches());
  EXPECT_TRUE(map.FuncReaches(p.FindFunction("middle")));
  EXPECT_FALSE(map.FuncReaches(p.FindFunction("unrelated")));
  EXPECT_EQ(map.Distance(p.FindFunction("target"), 0), 0u);
  EXPECT_EQ(map.Distance(p.FindFunction("middle"), 0), 1u);
  EXPECT_EQ(map.Distance(p.entry, 0), 2u);
}

TEST(Cfg, BranchDistancesPreferShortPath) {
  const Program p = Assemble(R"(
    func main()
      movi %c, 1
      br %c, fast, slow
    fast:
      call %v, target(%c)
      ret %v
    slow:
      movi %x, 0
      jmp slower
    slower:
      call %v, target(%x)
      ret %v
    func target(a)
      ret %a
  )");
  const Cfg cfg = Cfg::Build(p);
  const DistanceMap map = cfg.BackwardReachability(p.FindFunction("target"));
  // fast: 1 edge (call). slow: jmp + call = 2.
  EXPECT_EQ(map.Distance(p.entry, 1), 1u);  // fast
  EXPECT_EQ(map.Distance(p.entry, 2), 2u);  // slow
  EXPECT_EQ(map.Distance(p.entry, 0), 2u);  // entry -> fast -> target
}

TEST(Cfg, UnreachableEpDetected) {
  // `dead` is never called: the paper's verification case (ii).
  const Program p = Assemble(R"(
    func main()
      movi %x, 1
      ret %x
    func dead(a)
      ret %a
  )");
  const Cfg cfg = Cfg::Build(p);
  const DistanceMap map = cfg.BackwardReachability(p.FindFunction("dead"));
  EXPECT_FALSE(map.EntryReaches());
}

TEST(Cfg, StaticCfgMissesIndirectEdges) {
  const char* src = R"(
    func main()
      fnaddr %f, handler
      movi %x, 3
      icall %v, %f(%x)
      ret %v
    func handler(a)
      ret %a
  )";
  const Program p = Assemble(src);
  CfgOptions static_only;
  static_only.use_dynamic = false;
  const Cfg scfg = Cfg::Build(p, static_only);
  const DistanceMap smap = scfg.BackwardReachability(p.FindFunction("handler"));
  EXPECT_FALSE(smap.EntryReaches());  // static misses the icall edge

  const Cfg dcfg = Cfg::Build(p);  // dynamic default
  const DistanceMap dmap = dcfg.BackwardReachability(p.FindFunction("handler"));
  EXPECT_TRUE(dmap.EntryReaches());
  EXPECT_EQ(dcfg.dynamic_edge_count(), 1u);
}

TEST(Cfg, DynamicEdgesUseSeedInputs) {
  // The dispatched handler depends on the first input byte; only a seed
  // with byte >= 1 reveals the edge to `rare`.
  const char* src = R"(
    func main()
      movi %n, 1
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %c, %buf, 0
      movi %zero, 0
      cmpeq %iszero, %c, %zero
      br %iszero, common_path, rare_path
    common_path:
      fnaddr %f, common
      jmp dispatch
    rare_path:
      fnaddr %f, rare
      jmp dispatch
    dispatch:
      icall %v, %f()
      ret %v
    func common()
      ret
    func rare()
      ret
  )";
  const Program p = Assemble(src);

  CfgOptions no_seed;  // only the empty input: byte reads as absent -> 0
  const Cfg cfg0 = Cfg::Build(p, no_seed);
  EXPECT_FALSE(cfg0.BackwardReachability(p.FindFunction("rare"))
                   .EntryReaches());

  CfgOptions with_seed;
  with_seed.seed_inputs.push_back(Bytes{7});
  const Cfg cfg1 = Cfg::Build(p, with_seed);
  EXPECT_TRUE(cfg1.BackwardReachability(p.FindFunction("rare"))
                  .EntryReaches());
}

TEST(Cfg, ObfuscatedICallTriggersSimulatedDefect) {
  const char* src = R"(
    func main()
      fnaddr %f, handler
      movi %k, 0x55
      xor %g, %f, %k       ; obfuscate
      xor %g, %g, %k       ; deobfuscate
      icall %v, %g()
      ret %v
    func handler()
      ret
  )";
  const Program p = Assemble(src);
  EXPECT_THROW(Cfg::Build(p), CfgError);

  // "Fix the angr bug" switch: construction succeeds, edge recovered.
  CfgOptions fixed;
  fixed.resolve_obfuscated_icalls = true;
  const Cfg cfg = Cfg::Build(p, fixed);
  EXPECT_TRUE(cfg.BackwardReachability(p.FindFunction("handler"))
                  .EntryReaches());

  // Static-only construction is also unaffected (angr's static mode
  // simply lacks the edge rather than erroring).
  CfgOptions static_only;
  static_only.use_dynamic = false;
  EXPECT_NO_THROW(Cfg::Build(p, static_only));
}

TEST(Cfg, BackEdgeDetection) {
  const Program p = Assemble(R"(
    func main()
      movi %i, 0
      movi %n, 10
      jmp head
    head:
      cmpltu %c, %i, %n
      br %c, body, done
    body:
      addi %i, %i, 1
      jmp head
    done:
      ret %i
  )");
  const Cfg cfg = Cfg::Build(p);
  // head=1, body=2 (creation order: head referenced first).
  EXPECT_TRUE(cfg.IsBackEdge(p.entry, 2, 1));
  EXPECT_FALSE(cfg.IsBackEdge(p.entry, 0, 1));
  EXPECT_FALSE(cfg.IsBackEdge(p.entry, 1, 2));
}

TEST(Cfg, NestedLoopBackEdges) {
  const Program p = Assemble(R"(
    func main()
      movi %i, 0
      movi %n, 3
      jmp outer
    outer:
      cmpltu %c, %i, %n
      br %c, obody, done
    obody:
      movi %j, 0
      jmp inner
    inner:
      cmpltu %d, %j, %n
      br %d, ibody, onext
    ibody:
      addi %j, %j, 1
      jmp inner
    onext:
      addi %i, %i, 1
      jmp outer
    done:
      ret %i
  )");
  const Cfg cfg = Cfg::Build(p);
  int back_edge_count = 0;
  const auto& fn = p.functions[p.entry];
  for (vm::BlockId from = 0; from < fn.blocks.size(); ++from) {
    for (vm::BlockId to = 0; to < fn.blocks.size(); ++to) {
      if (cfg.IsBackEdge(p.entry, from, to)) ++back_edge_count;
    }
  }
  EXPECT_EQ(back_edge_count, 2);
}

TEST(Cfg, SelfLoopIsBackEdge) {
  const Program p = Assemble(R"(
    func main()
      movi %x, 1
      jmp spin
    spin:
      addi %x, %x, 1
      jmp spin
  )");
  const Cfg cfg = Cfg::Build(p);
  EXPECT_TRUE(cfg.IsBackEdge(p.entry, 1, 1));
}

}  // namespace
}  // namespace octopocs::cfg
