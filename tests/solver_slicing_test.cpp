// Incremental solving: exact memoization, certified model reuse, UNSAT
// subsumption, and solve-context seeding. (An independence-slicing tier
// lived here through PR 7; it never fired on the corpus and was
// retired, so these tests now cover the three surviving mechanisms.)
//
// The load-bearing property throughout is *purity*: every answer the
// SolverCache front door produces — whichever mechanism produced it —
// must equal what a fresh monolithic ByteSolver search over the same
// constraint sequence returns, byte for byte. The randomized cases
// below check exactly that; the targeted cases pin down each mechanism
// (subsumption soundness, context bit-identity, per-mechanism
// counters).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "symex/expr.h"
#include "symex/solve_context.h"
#include "symex/solver.h"

namespace octopocs::symex {
namespace {

ExprRef In(std::uint32_t off) { return MakeInput(off); }

ExprRef InputEq(std::uint32_t off, std::uint64_t val) {
  return MakeBinOp(vm::Op::kCmpEq, In(off), MakeConst(val));
}

SolveResult FreshSolve(const std::vector<ExprRef>& constraints,
                       const SolverOptions& options = {}) {
  ByteSolver solver(options);
  for (const ExprRef& c : constraints) solver.Add(c);
  return solver.Solve();
}

// Byte-level model equality. A model maps only the offsets the producer
// assigned explicitly; absent offsets default to 0 everywhere a model is
// consumed (Eval, poc' emission), so two models are the same *assignment*
// when every constrained variable gets the same effective value — a
// certified-reuse model that omits zero bytes is byte-identical to a
// search model that spells them out.
testing::AssertionResult SameAssignment(const std::vector<ExprRef>& cs,
                                        const Model& a, const Model& b) {
  SortedSmallSet<std::uint32_t> vars;
  for (const ExprRef& c : cs) vars.UnionWith(FreeVars(c));
  for (const std::uint32_t v : vars) {
    const auto ai = a.find(v);
    const auto bi = b.find(v);
    const std::uint8_t av = ai == a.end() ? 0 : ai->second;
    const std::uint8_t bv = bi == b.end() ? 0 : bi->second;
    if (av != bv) {
      return testing::AssertionFailure()
             << "byte " << v << ": " << int(av) << " vs " << int(bv);
    }
  }
  return testing::AssertionSuccess();
}

bool Satisfies(const std::vector<ExprRef>& cs, const Model& model) {
  for (const ExprRef& c : cs) {
    if (Eval(c, model) == 0) return false;
  }
  return true;
}

// -- Cache front door ≡ monolithic solving --------------------------------

// Builds a random constraint system over a handful of variables with a
// mix of unary range checks and binary couplings, spread over several
// independent clusters (varied structure for the purity checks).
std::vector<ExprRef> RandomSystem(std::mt19937& rng, bool force_unsat) {
  std::vector<ExprRef> cs;
  const int clusters = 2 + static_cast<int>(rng() % 3);
  for (int c = 0; c < clusters; ++c) {
    const std::uint32_t base = static_cast<std::uint32_t>(c) * 4;
    const int k = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < k; ++i) {
      switch (rng() % 3) {
        case 0:
          cs.push_back(MakeBinOp(vm::Op::kCmpLtU, In(base + rng() % 2),
                                 MakeConst(1 + rng() % 200)));
          break;
        case 1:
          cs.push_back(MakeBinOp(vm::Op::kCmpEq,
                                 MakeBinOp(vm::Op::kAnd, In(base),
                                           MakeConst(0x0F)),
                                 MakeConst(rng() % 16)));
          break;
        default:
          cs.push_back(MakeBinOp(vm::Op::kCmpLeU, In(base),
                                 MakeBinOp(vm::Op::kAdd, In(base + 1),
                                           MakeConst(rng() % 5))));
          break;
      }
    }
  }
  if (force_unsat) {
    const std::uint32_t v = rng() % 8;
    cs.push_back(InputEq(v, 3));
    cs.push_back(InputEq(v, 4));
  }
  return cs;
}

TEST(CacheSolveTest, FrontDoorEqualsMonolithicOnRandomSystems) {
  std::mt19937 rng(1234);
  for (int round = 0; round < 60; ++round) {
    InternScope intern;
    const std::vector<ExprRef> cs = RandomSystem(rng, (round % 4) == 3);
    const SolveResult fresh = FreshSolve(cs);
    SolverCache cache;
    const SolveResult cached = cache.Solve(cs, {}, {}, nullptr);
    ASSERT_EQ(cached.status, fresh.status) << "round " << round;
    if (fresh.status == SolveStatus::kSat) {
      EXPECT_TRUE(SameAssignment(cs, cached.model, fresh.model))
          << "round " << round
          << ": the cache front door must pick byte-identical models";
    }
  }
}

TEST(CacheSolveTest, ResultIsPureAcrossCacheHistories) {
  // The same query through two caches with different histories must
  // agree: one cold, one warmed with each slice separately.
  InternScope intern;
  const std::vector<ExprRef> cs = {
      MakeBinOp(vm::Op::kCmpLtU, In(0), MakeConst(9)),
      InputEq(4, 200),
      MakeBinOp(vm::Op::kCmpLeU, In(8), In(9)),
  };
  SolverCache cold;
  const SolveResult a = cold.Solve(cs, {}, {}, nullptr);

  SolverCache warm;
  (void)warm.Solve({cs[0]}, {}, {}, nullptr);
  (void)warm.Solve({cs[1]}, {}, {}, nullptr);
  (void)warm.Solve({cs[2]}, {}, {}, nullptr);
  const SolveResult b = warm.Solve(cs, {}, {}, nullptr);

  EXPECT_EQ(a.status, b.status);
  EXPECT_TRUE(SameAssignment(cs, a.model, b.model));
  EXPECT_GE(warm.stats().hits, 1u)
      << "the warmed cache should answer the joint query from cache";
}

// -- UNSAT subsumption -----------------------------------------------------

TEST(SubsumptionTest, CachedUnsatSubsetProvesSupersetUnsat) {
  InternScope intern;
  SolverCache cache;
  const std::vector<ExprRef> core = {InputEq(2, 7), InputEq(2, 9)};
  ASSERT_EQ(cache.Solve(core, {}, {}, nullptr).status, SolveStatus::kUnsat);

  const std::vector<ExprRef> superset = {InputEq(0, 1), core[0],
                                         InputEq(5, 3), core[1]};
  const SolveResult r = cache.Solve(superset, {}, {}, nullptr);
  EXPECT_EQ(r.status, SolveStatus::kUnsat);
  EXPECT_EQ(cache.stats().subsumption_hits, 1u);
  // Soundness cross-check: a fresh search agrees.
  EXPECT_EQ(FreshSolve(superset).status, SolveStatus::kUnsat);
}

TEST(SubsumptionTest, NeverFlipsASatisfiableQuery) {
  // Warm a cache with many UNSAT systems, then stress it with random
  // *satisfiable* queries: none may come back kUnsat.
  std::mt19937 rng(99);
  InternScope intern;
  SolverCache cache;
  for (std::uint32_t v = 0; v < 6; ++v) {
    (void)cache.Solve({InputEq(v, 1), InputEq(v, 2)}, {}, {}, nullptr);
  }
  for (int round = 0; round < 40; ++round) {
    const std::vector<ExprRef> cs = RandomSystem(rng, /*force_unsat=*/false);
    const SolveResult fresh = FreshSolve(cs);
    const SolveResult cached = cache.Solve(cs, {}, {}, nullptr);
    ASSERT_EQ(cached.status, fresh.status)
        << "round " << round << ": subsumption flipped a verdict";
    if (fresh.status == SolveStatus::kSat) {
      // A warm cache may serve a *different* model than a cold search
      // (certified reuse), but whatever it serves must be a certificate.
      EXPECT_TRUE(Satisfies(cs, cached.model)) << "round " << round;
    }
  }
}

// -- SolveContext seeding --------------------------------------------------

TEST(SolveContextTest, SeededSearchIsBitIdenticalIncludingSteps) {
  std::mt19937 rng(4321);
  for (int round = 0; round < 40; ++round) {
    InternScope intern;
    const std::vector<ExprRef> cs = RandomSystem(rng, (round % 5) == 4);

    SolveContext ctx;
    for (const ExprRef& c : cs) ctx.Apply(c);

    SolverOptions with_ctx;
    with_ctx.context = &ctx;
    const SolveResult seeded = FreshSolve(cs, with_ctx);
    const SolveResult plain = FreshSolve(cs, {});

    ASSERT_EQ(seeded.status, plain.status) << "round " << round;
    EXPECT_EQ(seeded.model, plain.model) << "round " << round;
    EXPECT_EQ(seeded.steps, plain.steps)
        << "round " << round
        << ": context seeding may only skip prefilter evaluations, "
           "never change the search";
  }
}

TEST(SolveContextTest, WipeoutMarksKnownUnsat) {
  InternScope intern;
  SolveContext ctx;
  ctx.Apply(InputEq(3, 10));
  EXPECT_FALSE(ctx.known_unsat());
  ctx.Apply(InputEq(3, 11));
  EXPECT_TRUE(ctx.known_unsat());

  SolverCache cache;
  SolveContext query_ctx = ctx;
  const SolveResult r =
      cache.Solve({InputEq(3, 10), InputEq(3, 11)}, {}, {}, &query_ctx);
  EXPECT_EQ(r.status, SolveStatus::kUnsat);
  EXPECT_EQ(cache.stats().subsumption_hits, 1u);
}

// -- Per-mechanism hit counters --------------------------------------------

TEST(CacheCountersTest, EachMechanismBumpsItsOwnCounter) {
  InternScope intern;
  SolverCache cache;
  const ExprRef a = InputEq(0, 5);
  const ExprRef b = InputEq(1, 7);

  // Fresh solve: miss.
  ASSERT_EQ(cache.Solve({a}, {}, {}, nullptr).status, SolveStatus::kSat);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // Same sequence again: exact hit.
  ASSERT_EQ(cache.Solve({a}, {}, {}, nullptr).status, SolveStatus::kSat);
  EXPECT_EQ(cache.stats().exact_hits, 1u);

  // A new joint query is a fresh search (the slicing tier that once
  // stitched {a} and {b} answers together is retired), but it caches
  // the joint model {0:5, 1:7}...
  ASSERT_EQ(cache.Solve({a, b}, {}, {}, nullptr).status, SolveStatus::kSat);
  EXPECT_EQ(cache.stats().misses, 2u);

  // ...which certifies this relaxation without a search: model reuse.
  const std::vector<ExprRef> relaxed = {
      MakeBinOp(vm::Op::kCmpLeU, In(0), MakeConst(5)),
      MakeBinOp(vm::Op::kCmpLeU, In(1), MakeConst(7)),
  };
  const SolveResult reused = cache.Solve(relaxed, {}, {}, nullptr);
  ASSERT_EQ(reused.status, SolveStatus::kSat);
  EXPECT_EQ(reused.steps, 0u) << "cache hits must report zero steps";
  EXPECT_TRUE(Satisfies(relaxed, reused.model));
  const SolverCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 4u) << "hits + misses == counted queries";
  EXPECT_EQ(s.hits, s.exact_hits + s.model_reuse_hits + s.subsumption_hits)
      << "per-mechanism counters partition the hit total";
  EXPECT_GE(s.model_reuse_hits, 1u)
      << "the relaxed query must be served by certified model reuse";

  // UNSAT core, then a superset: subsumption.
  ASSERT_EQ(cache.Solve({InputEq(2, 1), InputEq(2, 2)}, {}, {}, nullptr)
                .status,
            SolveStatus::kUnsat);
  ASSERT_EQ(
      cache.Solve({a, InputEq(2, 1), InputEq(2, 2)}, {}, {}, nullptr).status,
      SolveStatus::kUnsat);
  EXPECT_EQ(cache.stats().subsumption_hits, 1u);
}

}  // namespace
}  // namespace octopocs::symex
