// Structured tracer (support/trace.h): span nesting, counter events,
// cross-thread merging and the JSONL wire format.
#include "support/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace octopocs::support {
namespace {

TEST(TracerTest, SpanEventsComeOutNestedAndInOrder) {
  Tracer tracer;
  tracer.Begin("outer", 7);
  tracer.Begin("inner");
  tracer.End("inner");
  tracer.End("outer");

  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kBegin);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].value, 7);
  EXPECT_EQ(events[1].kind, TraceEventKind::kBegin);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[2].kind, TraceEventKind::kEnd);
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[3].kind, TraceEventKind::kEnd);
  EXPECT_STREQ(events[3].name, "outer");
  // Sequence numbers are strictly increasing and timestamps monotone.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
}

TEST(TracerTest, TraceSpanIsRaiiAndNullTolerant) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "phase", 1);
    TraceSpan inner(&tracer, "attempt");
  }
  EXPECT_EQ(tracer.event_count(), 4u);
  {
    // A null tracer must be a no-op, not a crash — call sites stay
    // branch-free.
    TraceSpan none(nullptr, "ghost");
  }
  EXPECT_EQ(tracer.event_count(), 4u);
}

TEST(TracerTest, CountersCarryValues) {
  Tracer tracer;
  tracer.Counter("widgets", 41);
  tracer.Counter("widgets", -3);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kCounter);
  EXPECT_EQ(events[0].value, 41);
  EXPECT_EQ(events[1].value, -3);
}

TEST(TracerTest, ManyEventsCrossChunkBoundaries) {
  // Chunks hold 1024 events; 5000 forces several allocations on one
  // thread and the snapshot must still see every event in order.
  Tracer tracer;
  constexpr int kEvents = 5000;
  for (int i = 0; i < kEvents; ++i) tracer.Counter("n", i);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) EXPECT_EQ(events[i].value, i);
}

TEST(TracerTest, ThreadsMergeWithDistinctTidsAndGlobalOrder) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 600;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) tracer.Counter("t", i);
    });
  }
  for (auto& th : threads) th.join();

  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::vector<bool> tid_seen(kThreads, false);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) EXPECT_LT(events[i - 1].seq, events[i].seq);
    ASSERT_LT(events[i].tid, static_cast<std::uint32_t>(kThreads));
    tid_seen[events[i].tid] = true;
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(tid_seen[t]);
}

TEST(TracerTest, JsonlSchemaHasOneWellFormedObjectPerLine) {
  Tracer tracer;
  tracer.Begin("phase", 2);
  tracer.Counter("hits", 9);
  tracer.End("phase");

  std::ostringstream os;
  tracer.WriteJsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);

  // Every line is a single JSON object with the fixed key set.
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"type\":\""), std::string::npos);
    EXPECT_NE(l.find("\"name\":\""), std::string::npos);
    EXPECT_NE(l.find("\"tid\":"), std::string::npos);
    EXPECT_NE(l.find("\"seq\":"), std::string::npos);
    EXPECT_NE(l.find("\"ts_ns\":"), std::string::npos);
  }
  // Spans carry "arg", counters carry "value".
  EXPECT_NE(lines[0].find("\"type\":\"begin\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"arg\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"value\":9"), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"end\""), std::string::npos);
}

TEST(TracerTest, WriteJsonlFileRoundTrips) {
  Tracer tracer;
  tracer.Counter("x", 1);
  const std::string path =
      testing::TempDir() + "octopocs_tracing_test.jsonl";
  ASSERT_TRUE(tracer.WriteJsonlFile(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"name\":\"x\""), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

TEST(TracerTest, WriteJsonlFileReportsUnwritablePath) {
  Tracer tracer;
  tracer.Counter("x", 1);
  EXPECT_FALSE(tracer.WriteJsonlFile("/nonexistent-dir/trace.jsonl"));
}

}  // namespace
}  // namespace octopocs::support
