// Property tests for the synthetic pair generator (src/gen): determinism,
// clone recovery under every mutation class, label correctness through
// the full pipeline (including the fuzz rung and a transitive S→T→U
// chain), and the satellite guarantee that guard-inserted pairs carry the
// NotTriggerable label.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "clone/detector.h"
#include "core/octopocs.h"
#include "gen/generator.h"
#include "vm/disasm.h"

namespace octopocs {
namespace {

constexpr std::uint64_t kSeed = 7;

// Generation itself runs self-checks (concrete traps, clone recovery) and
// throws on violation — so "builds without throwing" is already the bulk
// of the property. The assertions below pin the public contract.

TEST(GenTest, DeterministicAcrossRebuilds) {
  for (int ordinal : {0, 3, 7, 11, 14, 15, 20}) {
    gen::GeneratedPair a = gen::BuildGeneratedPair(kSeed, ordinal);
    gen::GeneratedPair b = gen::BuildGeneratedPair(kSeed, ordinal);
    EXPECT_EQ(vm::Disassemble(a.pair.s), vm::Disassemble(b.pair.s));
    EXPECT_EQ(vm::Disassemble(a.pair.t), vm::Disassemble(b.pair.t));
    EXPECT_EQ(a.pair.poc, b.pair.poc);
    EXPECT_EQ(gen::DescribeGeneratedPair(a), gen::DescribeGeneratedPair(b));
  }
}

TEST(GenTest, DifferentSeedsDiffer) {
  gen::GeneratedPair a = gen::BuildGeneratedPair(1, 0);
  gen::GeneratedPair b = gen::BuildGeneratedPair(2, 0);
  EXPECT_NE(gen::DescribeGeneratedPair(a), gen::DescribeGeneratedPair(b));
}

TEST(GenTest, EveryMutationClassRecoversSharedArea) {
  // Two full mutation cycles plus the chain slots. Clone recovery is
  // asserted inside the generator; here we double-check from the outside
  // and pin the label taxonomy.
  std::set<std::string> mutations_seen;
  for (int ordinal = 0; ordinal < 32; ++ordinal) {
    gen::GeneratedPair g = gen::BuildGeneratedPair(kSeed, ordinal);
    mutations_seen.insert(g.mutation);
    std::string t_callee = "gen_area";
    if (!g.pair.t_names.empty()) t_callee = g.pair.t_names.at("gen_area");
    bool recovered = false;
    for (const clone::CloneMatch& m : clone::DetectClones(g.pair.s, g.pair.t))
      if (m.name_in_s == "gen_area" && m.name_in_t == t_callee) recovered = true;
    EXPECT_TRUE(recovered) << gen::DescribeGeneratedPair(g);

    if (g.mutation == "guard-insert") {
      EXPECT_EQ(g.expected_verdict, core::Verdict::kNotTriggerable);
      EXPECT_FALSE(g.needs_fuzz);
    } else if (g.mutation == "symex-hostile") {
      EXPECT_EQ(g.expected_verdict, core::Verdict::kTriggeredByFuzzing);
      EXPECT_TRUE(g.needs_fuzz);
    } else {
      EXPECT_EQ(g.expected_verdict, core::Verdict::kTriggered);
    }
    if (ordinal % 16 == 14) EXPECT_EQ(g.chain_hop, 1);
    if (ordinal % 16 == 15) EXPECT_EQ(g.chain_hop, 2);
  }
  for (const char* m : {"rename-locals", "reorder-blocks", "outline-helper",
                        "inline-helper", "guard-insert", "symex-hostile",
                        "rename-clone"})
    EXPECT_TRUE(mutations_seen.count(m)) << m;
}

TEST(GenTest, ChainHopsShareTheMiddleProgram) {
  gen::GeneratedPair hop1 = gen::BuildGeneratedPair(kSeed, 14);
  gen::GeneratedPair hop2 = gen::BuildGeneratedPair(kSeed, 15);
  EXPECT_EQ(vm::Disassemble(hop1.pair.t), vm::Disassemble(hop2.pair.s));
  EXPECT_EQ(hop1.pair.poc, hop2.pair.poc);
  EXPECT_EQ(hop1.chain_hop, 1);
  EXPECT_EQ(hop2.chain_hop, 2);
}

TEST(GenTest, LoadGeneratedPairRoundTrips) {
  gen::GeneratedPair g = gen::BuildGeneratedPair(kSeed, 4);
  corpus::Pair loaded = gen::LoadGeneratedPair(kSeed, g.pair.idx);
  EXPECT_EQ(vm::Disassemble(g.pair.t), vm::Disassemble(loaded.t));
  EXPECT_EQ(g.pair.poc, loaded.poc);
  EXPECT_THROW(gen::LoadGeneratedPair(kSeed, 3), std::out_of_range);
}

core::PipelineOptions FuzzOptions() {
  core::PipelineOptions options;
  options.fuzz_fallback = true;
  options.fuzz_execs = 200000;
  return options;
}

TEST(GenTest, PipelineReproducesLabelsForOneFullMutationCycle) {
  // Ordinals 0..6 cover each mutation class exactly once; the verifier
  // (with the fuzz rung armed, as the soak harness runs it) must
  // reproduce the generator's label for every one.
  for (int ordinal = 0; ordinal < 7; ++ordinal) {
    gen::GeneratedPair g = gen::BuildGeneratedPair(kSeed, ordinal);
    core::VerificationReport report = core::VerifyPair(g.pair, FuzzOptions());
    EXPECT_EQ(report.verdict, g.expected_verdict)
        << gen::DescribeGeneratedPair(g) << " detail: " << report.detail;
  }
}

TEST(GenTest, ChainVerifiesTransitively) {
  gen::GeneratedPair hop1 = gen::BuildGeneratedPair(kSeed, 14);
  gen::GeneratedPair hop2 = gen::BuildGeneratedPair(kSeed, 15);
  core::VerificationReport r1 = core::VerifyPair(hop1.pair, FuzzOptions());
  ASSERT_EQ(r1.verdict, core::Verdict::kTriggered) << r1.detail;
  ASSERT_FALSE(r1.reformed_poc.empty());
  // The reformed poc' from S→T is the evidence fed into the T→U hop.
  corpus::Pair second = hop2.pair;
  second.poc = r1.reformed_poc;
  core::VerificationReport r2 = core::VerifyPair(second, FuzzOptions());
  EXPECT_EQ(r2.verdict, core::Verdict::kTriggered) << r2.detail;
}

TEST(GenTest, HogPairIsGuardedAndHostile) {
  gen::GeneratedPair hog = gen::BuildHogPair(kSeed);
  EXPECT_EQ(hog.pair.idx, gen::kHogIdx);
  EXPECT_EQ(hog.expected_verdict, core::Verdict::kNotTriggerable);
  corpus::Pair loaded = gen::LoadGeneratedPair(kSeed, gen::kHogIdx);
  EXPECT_EQ(vm::Disassemble(hog.pair.t), vm::Disassemble(loaded.t));
}

}  // namespace
}  // namespace octopocs
