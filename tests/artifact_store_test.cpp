// Content-addressed artifact store: key stability and invalidation,
// typed access, LRU eviction — and the pipeline-level guarantee that
// caching never changes a single byte of any corpus verdict.
#include "core/artifact_store.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "core/octopocs.h"
#include "core/parallel_verify.h"
#include "corpus/pairs.h"
#include "vm/asm.h"

namespace octopocs::core {
namespace {

constexpr const char* kProgText = R"(
  func main()
    movi %x, 7
    call %v, helper(%x)
    ret %v
  func helper(a)
    addi %r, %a, 1
    ret %r
)";

ArtifactKey KeyOf(const vm::Program& p, std::string_view kind) {
  ArtifactHasher h;
  h.Program(p);
  return h.Finish(kind);
}

TEST(ArtifactKey, StableAcrossStructurallyIdenticalPrograms) {
  // BuildCorpus-style reconstruction: two distinct Program objects with
  // the same content must produce the same key — that is what makes
  // cross-run and cross-pair reuse work.
  const vm::Program a = vm::Assemble(kProgText);
  const vm::Program b = vm::Assemble(kProgText);
  EXPECT_EQ(KeyOf(a, "k"), KeyOf(b, "k"));
}

TEST(ArtifactKey, ContentChangeInvalidates) {
  const vm::Program a = vm::Assemble(kProgText);
  std::string mutated(kProgText);
  // One immediate differs: movi %x, 7 → movi %x, 8.
  mutated.replace(mutated.find(", 7"), 3, ", 8");
  const vm::Program b = vm::Assemble(mutated);
  EXPECT_NE(KeyOf(a, "k"), KeyOf(b, "k"));
}

TEST(ArtifactKey, KindTagSeparatesArtifactTypes) {
  const vm::Program p = vm::Assemble(kProgText);
  EXPECT_NE(KeyOf(p, "ep"), KeyOf(p, "cfg"));
}

TEST(ArtifactKey, StringsAreLengthPrefixed) {
  ArtifactHasher a;
  a.Str("ab").Str("c");
  ArtifactHasher b;
  b.Str("a").Str("bc");
  EXPECT_NE(a.Finish("k"), b.Finish("k"));
}

TEST(ArtifactKey, OptionBitsInvalidate) {
  ArtifactHasher a;
  a.Bool(true).U64(100);
  ArtifactHasher b;
  b.Bool(false).U64(100);
  EXPECT_NE(a.Finish("k"), b.Finish("k"));
}

TEST(ArtifactStore, PutThenGetReturnsTheValue) {
  ArtifactStore store;
  const ArtifactKey key{1, 2};
  store.Put<int>(key, 42);
  const auto hit = store.Get<int>(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().insertions, 1u);
}

TEST(ArtifactStore, MissOnAbsentKeyAndOnTypeMismatch) {
  ArtifactStore store;
  const ArtifactKey key{1, 2};
  EXPECT_EQ(store.Get<int>(key), nullptr);
  store.Put<int>(key, 7);
  // The store never lies about types: a different T is a miss.
  EXPECT_EQ(store.Get<double>(key), nullptr);
  EXPECT_EQ(store.stats().misses, 2u);
}

TEST(ArtifactStore, RefreshKeepsOneEntry) {
  ArtifactStore store;
  const ArtifactKey key{3, 4};
  store.Put<int>(key, 1);
  store.Put<int>(key, 2);  // last writer wins, no second slot
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(*store.Get<int>(key), 2);
}

TEST(ArtifactStore, EvictsLeastRecentlyUsed) {
  ArtifactStore store(/*capacity=*/2);
  const ArtifactKey k1{1, 0}, k2{2, 0}, k3{3, 0};
  store.Put<int>(k1, 1);
  store.Put<int>(k2, 2);
  // Touch k1 so k2 becomes the LRU victim.
  ASSERT_NE(store.Get<int>(k1), nullptr);
  store.Put<int>(k3, 3);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_NE(store.Get<int>(k1), nullptr);
  EXPECT_EQ(store.Get<int>(k2), nullptr);  // evicted
  EXPECT_NE(store.Get<int>(k3), nullptr);
  EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(ArtifactStore, HitAliasesAStableObject) {
  ArtifactStore store(/*capacity=*/1);
  const ArtifactKey key{9, 9};
  const auto put = store.Put<std::string>(key, "payload");
  const auto hit = store.Get<std::string>(key);
  EXPECT_EQ(put.get(), hit.get());
  // Eviction must not invalidate outstanding handles.
  store.Put<int>(ArtifactKey{10, 10}, 1);
  EXPECT_EQ(*hit, "payload");
}

// -- CFG edge caching ---------------------------------------------------------

TEST(CfgEdges, ExportAndRehydrateReproduceTheGraph) {
  const corpus::Pair pair = corpus::BuildPair(8);
  cfg::CfgOptions opts;
  opts.seed_inputs.push_back(pair.poc);
  const cfg::Cfg built = cfg::Cfg::Build(pair.t, opts);
  const cfg::Cfg rehydrated =
      cfg::Cfg::FromEdges(pair.t, built.ExportEdges());

  EXPECT_EQ(rehydrated.dynamic_edge_count(), built.dynamic_edge_count());
  for (vm::FuncId f = 0; f < pair.t.functions.size(); ++f) {
    for (vm::BlockId b = 0; b < pair.t.Fn(f).blocks.size(); ++b) {
      EXPECT_EQ(rehydrated.Successors(f, b), built.Successors(f, b))
          << "fn " << f << " block " << b;
      for (vm::BlockId to = 0; to < pair.t.Fn(f).blocks.size(); ++to) {
        EXPECT_EQ(rehydrated.IsBackEdge(f, b, to), built.IsBackEdge(f, b, to));
      }
    }
  }
}

// -- Pipeline-level reuse and byte identity -----------------------------------

void ExpectReportsIdentical(const VerificationReport& a,
                            const VerificationReport& b, int idx) {
  EXPECT_EQ(a.verdict, b.verdict) << "pair " << idx;
  EXPECT_EQ(a.type, b.type) << "pair " << idx;
  EXPECT_EQ(a.detail, b.detail) << "pair " << idx;
  EXPECT_EQ(a.ep_name, b.ep_name) << "pair " << idx;
  EXPECT_EQ(a.ep_in_s, b.ep_in_s) << "pair " << idx;
  EXPECT_EQ(a.ep_in_t, b.ep_in_t) << "pair " << idx;
  EXPECT_EQ(a.bunch_count, b.bunch_count) << "pair " << idx;
  EXPECT_EQ(a.crash_primitive_bytes, b.crash_primitive_bytes)
      << "pair " << idx;
  EXPECT_EQ(a.poc_generated, b.poc_generated) << "pair " << idx;
  EXPECT_EQ(a.reformed_poc, b.reformed_poc) << "pair " << idx;
  EXPECT_EQ(a.bunch_offsets, b.bunch_offsets) << "pair " << idx;
  EXPECT_EQ(a.failed_phase, b.failed_phase) << "pair " << idx;
  EXPECT_EQ(a.observed_trap, b.observed_trap) << "pair " << idx;
}

TEST(ArtifactCache, SamePairVerifiedTwiceReusesOriginArtifacts) {
  const corpus::Pair pair = corpus::BuildPair(8);
  ArtifactStore store;
  PipelineOptions options;
  options.artifacts = &store;

  const VerificationReport cold = VerifyPair(pair, options);
  const auto cold_stats = store.stats();
  EXPECT_EQ(cold_stats.hits, 0u);
  EXPECT_GT(cold_stats.insertions, 0u);

  const VerificationReport warm = VerifyPair(pair, options);
  // Warm run: ep discovery, P1 extraction and the CFG all come from the
  // store — three hits, no new insertions.
  EXPECT_EQ(store.stats().hits, 3u);
  EXPECT_EQ(store.stats().insertions, cold_stats.insertions);
  ExpectReportsIdentical(cold, warm, pair.idx);
  EXPECT_EQ(warm.verdict, Verdict::kTriggered);
}

TEST(ArtifactCache, CorpusResultsAreByteIdenticalCacheOnVsOff) {
  const std::vector<corpus::Pair> pairs = corpus::BuildCorpus();

  PipelineOptions plain;
  const auto baseline = VerifyCorpus(pairs, plain, /*jobs=*/4);

  ArtifactStore store;
  PipelineOptions cached;
  cached.artifacts = &store;
  const auto cold = VerifyCorpus(pairs, cached, /*jobs=*/4);
  // The corpus contains origin-sharing pairs (e.g. one ghostscript S
  // fanning out to several targets), so even the cold pass must see
  // cross-pair reuse.
  EXPECT_GT(store.stats().hits, 0u);

  const auto warm = VerifyCorpus(pairs, cached, /*jobs=*/4);

  ASSERT_EQ(baseline.size(), pairs.size());
  ASSERT_EQ(cold.size(), pairs.size());
  ASSERT_EQ(warm.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ExpectReportsIdentical(baseline[i], cold[i], pairs[i].idx);
    ExpectReportsIdentical(baseline[i], warm[i], pairs[i].idx);
  }
}

}  // namespace
}  // namespace octopocs::core
