// The verification daemon (core/server.h): request round-trips,
// admission control and priority shedding, deadline composition with
// graceful degradation, per-site fault containment, drain semantics,
// and the cold-vs-warm byte-identity the persistent tier guarantees.
//
// Every test runs the Server in-process on a unix socket under
// TempDir, talking to it through the same SendRequest helper the CLI
// client uses.
#include "core/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/report_io.h"
#include "corpus/pairs.h"
#include "support/fault.h"
#include "support/socket.h"

#ifndef _WIN32

namespace octopocs::core {
namespace {

std::string TempSocket(const std::string& name) {
  return testing::TempDir() + "octopocs_srv_" + name + ".sock";
}

std::string TempCache(const std::string& name) {
  const std::string dir = testing::TempDir() + "octopocs_srvcache_" + name;
  std::remove((dir + "/segments.dat").c_str());
  std::remove((dir + "/index.dat").c_str());
  return dir;
}

ServeOptions BaseOptions(const std::string& socket_path) {
  ServeOptions options;
  options.socket_path = socket_path;
  options.workers = 2;
  options.queue_depth = 8;
  return options;
}

TEST(ServeRequestWire, RoundTripsEveryField) {
  ServeRequest request;
  request.pair = 8;
  request.id = "req \"42\"";
  request.priority = 3;
  request.deadline_ms = 1500;
  request.cfg_fallback = true;
  request.solver_retry = true;
  request.degrade_on_timeout = true;
  request.poc_override = {0x00, 0x41, 0xff};

  ServeRequest parsed;
  std::string error;
  ASSERT_TRUE(
      ParseServeRequest(SerializeServeRequest(request), &parsed, &error))
      << error;
  EXPECT_EQ(parsed.pair, request.pair);
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_EQ(parsed.priority, request.priority);
  EXPECT_EQ(parsed.deadline_ms, request.deadline_ms);
  EXPECT_EQ(parsed.cfg_fallback, request.cfg_fallback);
  EXPECT_EQ(parsed.solver_retry, request.solver_retry);
  EXPECT_EQ(parsed.degrade_on_timeout, request.degrade_on_timeout);
  EXPECT_EQ(parsed.poc_override, request.poc_override);

  EXPECT_FALSE(ParseServeRequest("{\"pair\":0}", &parsed, &error));
  EXPECT_FALSE(ParseServeRequest("not json", &parsed, &error));
  EXPECT_FALSE(ParseServeRequest("{\"pair\":1,\"poc\":\"zz\"}", &parsed,
                                 &error));

  ServeError err{"RETRY_AFTER", 250, "queue full"};
  ServeError parsed_err;
  ASSERT_TRUE(
      ParseServeError(SerializeServeError(err), &parsed_err, &error));
  EXPECT_EQ(parsed_err.code, "RETRY_AFTER");
  EXPECT_EQ(parsed_err.retry_after_ms, 250u);
  EXPECT_EQ(parsed_err.detail, "queue full");
}

TEST(ServerTest, RoundTripMatchesInProcessVerdict) {
  const std::string socket_path = TempSocket("roundtrip");
  Server server(BaseOptions(socket_path));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ServeRequest request;
  request.pair = 1;
  const ClientResult result = SendRequest(socket_path, request);
  ASSERT_TRUE(result.ok) << result.transport_error;

  const VerificationReport direct = VerifyPair(corpus::BuildPair(1), {});
  EXPECT_EQ(result.report.verdict, direct.verdict);
  EXPECT_EQ(result.report.type, direct.type);
  EXPECT_EQ(result.report.detail, direct.detail);
  EXPECT_EQ(result.report.reformed_poc, direct.reformed_poc);
  server.Drain();
  EXPECT_EQ(server.stats().served, 1u);
}

TEST(ServerTest, MalformedAndUnknownRequestsAreRejectedCleanly) {
  const std::string socket_path = TempSocket("badreq");
  Server server(BaseOptions(socket_path));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // A raw line without the OCTO-REQ prefix.
  {
    int fd = support::ConnectUnix(socket_path, &error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(support::WriteAll(fd, "HELLO server\n"));
    support::FdReader reader(fd);
    std::string frame;
    ASSERT_EQ(reader.ReadFrame(kWorkerDoneSentinel, 5000, nullptr, &frame),
              support::FdReader::Status::kOk);
    EXPECT_EQ(frame.rfind(kServeErrPrefix, 0), 0u) << frame;
    EXPECT_NE(frame.find("BAD_REQUEST"), std::string::npos) << frame;
    support::CloseFd(fd);
  }
  // A pair index the corpus does not contain.
  {
    ServeRequest request;
    request.pair = 99;
    const ClientResult result = SendRequest(socket_path, request);
    ASSERT_FALSE(result.ok);
    EXPECT_TRUE(result.transport_error.empty()) << result.transport_error;
    EXPECT_EQ(result.error.code, "BAD_REQUEST");
  }
  // The daemon is unharmed: the next honest request is served.
  {
    ServeRequest request;
    request.pair = 1;
    EXPECT_TRUE(SendRequest(socket_path, request).ok);
  }
  server.Drain();
  EXPECT_EQ(server.stats().rejected, 2u);
}

TEST(ServerTest, OverloadShedsWithStructuredRetryAfter) {
  // One worker, queue depth one, a burst of concurrent requests: the
  // surplus must be answered RETRY_AFTER with a positive backoff hint,
  // never hung or dropped, and everything admitted must be served.
  const std::string socket_path = TempSocket("overload");
  ServeOptions options = BaseOptions(socket_path);
  options.workers = 1;
  options.queue_depth = 1;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kBurst = 8;
  std::vector<ClientResult> results(kBurst);
  {
    std::vector<std::thread> clients;
    clients.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      clients.emplace_back([&, i] {
        ServeRequest request;
        request.pair = 8;
        results[i] = SendRequest(socket_path, request);
      });
    }
    for (auto& t : clients) t.join();
  }
  server.Drain();

  int served = 0;
  int shed = 0;
  for (const ClientResult& r : results) {
    if (r.ok) {
      ++served;
      continue;
    }
    ASSERT_TRUE(r.transport_error.empty()) << r.transport_error;
    EXPECT_EQ(r.error.code, "RETRY_AFTER");
    EXPECT_GE(r.error.retry_after_ms, 50u);
    ++shed;
  }
  EXPECT_EQ(served + shed, kBurst);
  EXPECT_GE(served, 1);
  EXPECT_GE(shed, 1);
  const ServeStats st = server.stats();
  EXPECT_EQ(st.served, static_cast<std::uint64_t>(served));
  EXPECT_EQ(st.shed, static_cast<std::uint64_t>(shed));
}

TEST(ServerTest, HigherPriorityDisplacesQueuedLowPriorityWork) {
  // Wedge the single worker on a slow request, fill the depth-1 queue
  // with a low-priority request, then send a high-priority one: the
  // queued low-priority request must be the one shed ("displaced"),
  // and the high-priority request must be served.
  const std::string socket_path = TempSocket("priority");
  ServeOptions options = BaseOptions(socket_path);
  options.workers = 1;
  options.queue_depth = 1;
  // CWE-835 pair with adaptive theta: long enough to hold the worker
  // busy while the queue fills behind it.
  options.pipeline.adaptive_theta = true;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ClientResult slow_result, low_result, high_result;
  std::thread slow([&] {
    ServeRequest request;
    request.pair = 12;
    slow_result = SendRequest(socket_path, request);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread low([&] {
    ServeRequest request;
    request.pair = 1;
    request.priority = 0;
    low_result = SendRequest(socket_path, request);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ServeRequest high;
  high.pair = 1;
  high.priority = 5;
  high_result = SendRequest(socket_path, high);
  slow.join();
  low.join();
  server.Drain();

  EXPECT_TRUE(slow_result.ok) << slow_result.transport_error;
  EXPECT_TRUE(high_result.ok) << high_result.transport_error;
  // Exact timing can vary under load; when displacement did happen the
  // victim must carry the structured reason.
  if (!low_result.ok) {
    EXPECT_EQ(low_result.error.code, "RETRY_AFTER");
    EXPECT_NE(low_result.error.detail.find("displaced"), std::string::npos);
  }
}

TEST(ServeDeadline, ComposesSoonerWinsWithZeroAsUnbounded) {
  EXPECT_EQ(ComposeDeadlineMs(0, 0), 0u);      // neither side bounds
  EXPECT_EQ(ComposeDeadlineMs(0, 250), 250u);  // client budget alone
  EXPECT_EQ(ComposeDeadlineMs(500, 0), 500u);  // server cap alone
  EXPECT_EQ(ComposeDeadlineMs(500, 250), 250u);  // client is sooner
  EXPECT_EQ(ComposeDeadlineMs(250, 500), 250u);  // server cap is sooner
}

TEST(ServerTest, ExpiredDeadlineIsServedNotPersistedAndDegradeRetriesOnce) {
  // Warm corpus pairs run far below any millisecond budget, so a real
  // wall-clock expiry cannot be staged reliably; a raised kill switch
  // reaps every attempt at its first poll and reports it through the
  // same deadline_expired path (see PipelineDeadlineTest).
  const std::string socket_path = TempSocket("deadline");
  ServeOptions options = BaseOptions(socket_path);
  options.workers = 1;
  options.request_deadline_ms = 60'000;
  options.cache_dir = TempCache("deadline");
  std::atomic<bool> kill{true};
  options.pipeline.cancel_flag = &kill;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // The expired report is still served to the client...
  {
    ServeRequest request;
    request.pair = 8;
    request.deadline_ms = 1;
    const ClientResult result = SendRequest(socket_path, request);
    ASSERT_TRUE(result.ok) << result.transport_error;
    EXPECT_TRUE(result.report.deadline_expired);
    EXPECT_EQ(result.report.verdict, Verdict::kFailure);
  }
  EXPECT_EQ(server.stats().degraded_retries, 0u);
  // ...and degrade_on_timeout buys exactly one retry with the rungs
  // enabled (here the retry is reaped too — the point is that exactly
  // one was attempted and the client still got an answer).
  {
    ServeRequest request;
    request.pair = 8;
    request.deadline_ms = 1;
    request.degrade_on_timeout = true;
    const ClientResult result = SendRequest(socket_path, request);
    ASSERT_TRUE(result.ok) << result.transport_error;
    EXPECT_TRUE(result.report.deadline_expired);
  }
  server.Drain();
  EXPECT_EQ(server.stats().degraded_retries, 1u);
  // A budget verdict is about this run, not the pair: nothing reached
  // the persistent tier.
  EXPECT_EQ(server.stats().disk_stores, 0u);
  EXPECT_EQ(server.disk_store()->stats().stores, 0u);
}

TEST(ServerTest, ContainedFaultIsRetriedToACleanVerdict) {
  // A tooling fault on the first attempt (the angr-crash analogue) is
  // contained by the pipeline; the server must notice and retry once —
  // the one-shot fault is spent, so the retry produces the clean
  // verdict and the client never sees the hiccup.
  const std::string socket_path = TempSocket("contained");
  ServeOptions options = BaseOptions(socket_path);
  options.workers = 1;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const VerificationReport direct = VerifyPair(corpus::BuildPair(1), {});
  support::fault::Arm(support::FaultSite::kCfgBuild);
  ServeRequest request;
  request.pair = 1;
  const ClientResult result = SendRequest(socket_path, request);
  support::fault::Disarm();
  ASSERT_TRUE(result.ok) << result.transport_error;
  EXPECT_FALSE(result.report.exception_contained);
  EXPECT_EQ(result.report.verdict, direct.verdict);
  EXPECT_EQ(result.report.detail, direct.detail);
  server.Drain();
  EXPECT_EQ(server.stats().contained_retries, 1u);
}

TEST(ServerTest, EachServerFaultSiteIsAbsorbedPerRequest) {
  const std::string socket_path = TempSocket("faults");
  ServeOptions options = BaseOptions(socket_path);
  options.workers = 1;
  options.cache_dir = TempCache("faults");
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ServeRequest request;
  request.pair = 1;

  // kAdmission: the poisoned request sheds with RETRY_AFTER...
  support::fault::Arm(support::FaultSite::kAdmission);
  {
    const ClientResult result = SendRequest(socket_path, request);
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.error.code, "RETRY_AFTER");
  }
  // ...and the very next request is untouched.
  EXPECT_TRUE(SendRequest(socket_path, request).ok);

  // kDiskStoreWrite: the request is still served; only the persist
  // step degrades (cache-less), visible in the disk stats.
  request.pair = 4;  // a fresh key, so the Put actually runs
  support::fault::Arm(support::FaultSite::kDiskStoreWrite);
  EXPECT_TRUE(SendRequest(socket_path, request).ok);
  EXPECT_EQ(server.disk_store()->stats().store_errors, 1u);
  EXPECT_TRUE(SendRequest(socket_path, request).ok);

  // kResponseWrite: the affected client sees a torn transport, the
  // daemon records the drop and keeps serving.
  support::fault::Arm(support::FaultSite::kResponseWrite);
  {
    const ClientResult result = SendRequest(socket_path, request);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.transport_error.empty());
  }
  support::fault::Disarm();
  EXPECT_TRUE(SendRequest(socket_path, request).ok);
  server.Drain();
  const ServeStats st = server.stats();
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.response_drops, 1u);
}

TEST(ServerTest, DrainAnswersInFlightRequestsThenStopsAccepting) {
  const std::string socket_path = TempSocket("drain");
  std::atomic<int> interrupt{0};
  ServeOptions options = BaseOptions(socket_path);
  options.workers = 1;
  options.interrupt = &interrupt;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ClientResult in_flight;
  std::thread client([&] {
    ServeRequest request;
    request.pair = 8;
    in_flight = SendRequest(socket_path, request);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  interrupt.store(SIGTERM);
  server.Wait();  // observes the interrupt and drains
  client.join();

  ASSERT_TRUE(in_flight.ok) << in_flight.transport_error;
  // The socket is gone: new connections fail at the transport.
  const ClientResult late = SendRequest(socket_path, {});
  EXPECT_FALSE(late.ok);
  EXPECT_FALSE(late.transport_error.empty());
}

TEST(ServerTest, WarmRestartServesByteIdenticalReportsFromDisk) {
  const std::string socket_path = TempSocket("warm");
  const std::string cache_dir = TempCache("warm");
  ServeRequest request;
  request.pair = 1;

  std::string cold_json;
  {
    ServeOptions options = BaseOptions(socket_path);
    options.cache_dir = cache_dir;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    const ClientResult cold = SendRequest(socket_path, request);
    ASSERT_TRUE(cold.ok) << cold.transport_error;
    cold_json = SerializeReport(cold.report);
    server.Drain();
    EXPECT_EQ(server.stats().disk_stores, 1u);
  }
  // A new process-lifetime (new Server, same cache dir): the report
  // must come from the persistent tier, byte-identical to the cold run.
  {
    ServeOptions options = BaseOptions(socket_path);
    options.cache_dir = cache_dir;
    Server server(options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    EXPECT_EQ(server.disk_store()->stats().loaded_records, 1u);
    const ClientResult warm = SendRequest(socket_path, request);
    ASSERT_TRUE(warm.ok) << warm.transport_error;
    EXPECT_EQ(SerializeReport(warm.report), cold_json);
    server.Drain();
    EXPECT_EQ(server.stats().disk_hits, 1u);
  }
}

}  // namespace
}  // namespace octopocs::core

#endif  // !_WIN32
