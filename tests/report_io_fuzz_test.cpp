// Hostile-input hardening of the minijson report parser
// (core/report_io.h). The serve daemon feeds attacker-reachable bytes
// straight into ParseReport, so the parser must never crash, never
// recurse unboundedly, and never allocate proportionally to a
// malicious length claim — on ANY input. These tests drive it with a
// seeded mutation fuzzer plus targeted probes of each documented cap.
#include <cstdint>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "core/report_io.h"

namespace octopocs::core {
namespace {

using minijson::kMaxDocumentBytes;
using minijson::kMaxNestingDepth;

VerificationReport SampleReport() {
  VerificationReport report;
  report.verdict = Verdict::kTriggered;
  report.type = ResultType::kTypeII;
  report.detail = "trap at depth 3 \"quoted\" \\ backslash";
  report.reformed_poc = {0x00, 0x01, 0xfe, 0xff, 0x41};
  report.deadline_expired = false;
  report.exception_contained = true;
  report.timings.total_seconds = 1.25;
  report.timings.p1_seconds = 0.5;
  return report;
}

// A parse attempt is allowed to fail; it is never allowed to crash,
// throw, or return true while leaving the report half-written in a way
// that does not re-serialize.
void MustSurvive(const std::string& text) {
  VerificationReport report;
  std::string error;
  if (ParseReport(text, &report, &error)) {
    // Whatever parsed must round-trip through the serializer without
    // tripping any internal invariant.
    const std::string again = SerializeReport(report);
    EXPECT_FALSE(again.empty());
  } else {
    EXPECT_FALSE(error.empty()) << text.substr(0, 80);
  }
}

TEST(ReportIoFuzz, SeededMutationsNeverCrashTheParser) {
  // 2000 mutants of a valid serialized report: byte flips, insertions,
  // deletions, and splices of structural characters. Deterministic
  // seed so a failure reproduces.
  const std::string base = SerializeReport(SampleReport());
  std::mt19937 rng(20260807u);
  const std::string structural = "{}[]\",:\\x00\x7f";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutant = base;
    const int edits = 1 + static_cast<int>(rng() % 8);
    for (int e = 0; e < edits; ++e) {
      if (mutant.empty()) break;
      const std::size_t pos = rng() % mutant.size();
      switch (rng() % 4) {
        case 0:  // flip a byte
          mutant[pos] = static_cast<char>(rng() & 0xff);
          break;
        case 1:  // delete a byte
          mutant.erase(pos, 1);
          break;
        case 2:  // insert a random byte
          mutant.insert(pos, 1, static_cast<char>(rng() & 0xff));
          break;
        default:  // splice in a structural character
          mutant.insert(pos, 1, structural[rng() % structural.size()]);
          break;
      }
    }
    MustSurvive(mutant);
  }
}

TEST(ReportIoFuzz, EveryPrefixOfAValidReportIsHandled)
{
  // Truncation at every byte boundary — the exact shape a torn frame
  // or interrupted read produces.
  const std::string base = SerializeReport(SampleReport());
  for (std::size_t keep = 0; keep <= base.size(); ++keep) {
    MustSurvive(base.substr(0, keep));
  }
}

TEST(ReportIoFuzz, NestingDepthIsCappedNotStackOverflowed) {
  // A pathological "[[[[..." input used to be a stack overflow: one
  // recursion level per byte. The parser must refuse past
  // kMaxNestingDepth and accept anything at or under it.
  const std::size_t kWayTooDeep = 100000;
  std::string deep(kWayTooDeep, '[');
  VerificationReport report;
  std::string error;
  EXPECT_FALSE(ParseReport(deep, &report, &error));
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;

  // Same with objects.
  std::string deep_obj;
  for (std::size_t i = 0; i < kWayTooDeep; ++i) deep_obj += "{\"a\":";
  EXPECT_FALSE(ParseReport(deep_obj, &report, &error));
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;

  // Exactly at the cap is legal json nesting-wise (it then fails for
  // shape reasons, not a depth overflow).
  std::string at_cap(kMaxNestingDepth, '[');
  at_cap += std::string(kMaxNestingDepth, ']');
  EXPECT_FALSE(ParseReport(at_cap, &report, &error));
  EXPECT_EQ(error.find("nesting"), std::string::npos) << error;

  // One past the cap trips the depth check specifically.
  std::string over(kMaxNestingDepth + 1, '[');
  over += std::string(kMaxNestingDepth + 1, ']');
  EXPECT_FALSE(ParseReport(over, &report, &error));
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;
}

TEST(ReportIoFuzz, OversizeDocumentIsRejectedUpFront) {
  // A document over the cap is refused before any parsing work — the
  // error names the cap so operators can correlate with the limit.
  std::string huge = "{\"detail\":\"";
  huge.append(kMaxDocumentBytes, 'a');
  huge += "\"}";
  VerificationReport report;
  std::string error;
  EXPECT_FALSE(ParseReport(huge, &report, &error));
  EXPECT_NE(error.find("too large"), std::string::npos) << error;
}

TEST(ReportIoFuzz, OversizeReformedPocHexIsRejected) {
  // The reformed_poc field decodes hex into bytes; a hostile report
  // must not be able to demand an unbounded decode. Just over the cap
  // (in decoded bytes, so 2x in hex chars) is refused...
  std::string big = "{\"verdict\":\"triggered\",\"type\":2,\"reformed_poc\":\"";
  big.append(2 * (kMaxReformedPocBytes + 1), 'a');
  big += "\"}";
  VerificationReport report;
  std::string error;
  EXPECT_FALSE(ParseReport(big, &report, &error));
  EXPECT_NE(error.find("reformed_poc"), std::string::npos) << error;

  // ...while a real-sized poc still round-trips.
  VerificationReport ok = SampleReport();
  ok.reformed_poc.assign(4096, 0xab);
  VerificationReport parsed;
  ASSERT_TRUE(ParseReport(SerializeReport(ok), &parsed, &error)) << error;
  EXPECT_EQ(parsed.reformed_poc, ok.reformed_poc);
}

TEST(ReportIoFuzz, OutOfRangeEnumsAreRejectedNotAliased) {
  // A frame from a newer (or corrupted) peer may carry enum integers
  // this build has never heard of; they must be refused by name, never
  // cast into an aliased enumerator.
  VerificationReport report;
  std::string error;
  for (const char* frame : {"{\"verdict\":4}", "{\"verdict\":-1}",
                            "{\"verdict\":99}"}) {
    EXPECT_FALSE(ParseReport(frame, &report, &error)) << frame;
    EXPECT_NE(error.find("unknown verdict"), std::string::npos) << error;
  }
  for (const char* frame : {"{\"type\":5}", "{\"type\":-2}"}) {
    EXPECT_FALSE(ParseReport(frame, &report, &error)) << frame;
    EXPECT_NE(error.find("unknown result type"), std::string::npos) << error;
  }
  // The newest legal values still parse: TriggeredByFuzzing / Fuzzed.
  ASSERT_TRUE(ParseReport("{\"verdict\":3,\"type\":4}", &report, &error))
      << error;
  EXPECT_EQ(report.verdict, Verdict::kTriggeredByFuzzing);
  EXPECT_EQ(report.type, ResultType::kFuzzed);
}

TEST(ReportIoFuzz, TruncatedFuzzStatsFramesAreRejected) {
  // The fuzz-stats record is all-or-nothing: any strict subset of the
  // five keys means the frame was torn or tampered with.
  const std::string keys[] = {
      "\"fuzz_attempted\":true", "\"fuzz_execs\":100",
      "\"fuzz_execs_to_crash\":7", "\"fuzz_best_distance\":1.5",
      "\"fuzz_seed\":9",
  };
  VerificationReport report;
  std::string error;
  // Every single-key frame and every leave-one-out frame is refused.
  for (int drop = -1; drop < 5; ++drop) {
    for (int only = 0; only < 5; ++only) {
      std::string frame = "{";
      bool first = true;
      for (int k = 0; k < 5; ++k) {
        const bool include = drop >= 0 ? k != drop : k == only;
        if (!include) continue;
        if (!first) frame += ",";
        frame += keys[k];
        first = false;
      }
      frame += "}";
      EXPECT_FALSE(ParseReport(frame, &report, &error)) << frame;
      EXPECT_NE(error.find("truncated fuzz stats"), std::string::npos)
          << frame << " -> " << error;
      if (drop >= 0) break;  // leave-one-out frames ignore `only`
    }
  }
}

TEST(ReportIoFuzz, FuzzStatsRoundTripAndStaySparse) {
  // A report without a campaign serializes with no fuzz keys at all —
  // byte-compatible with pre-rung peers...
  const std::string plain = SerializeReport(SampleReport());
  EXPECT_EQ(plain.find("fuzz_"), std::string::npos);

  // ...and a campaign report round-trips every stat.
  VerificationReport fuzzed = SampleReport();
  fuzzed.verdict = Verdict::kTriggeredByFuzzing;
  fuzzed.type = ResultType::kFuzzed;
  fuzzed.fuzz_attempted = true;
  fuzzed.fuzz_execs = 41234;
  fuzzed.fuzz_execs_to_crash = 40999;
  fuzzed.fuzz_best_distance = 2.25;
  fuzzed.fuzz_seed = 1337;
  VerificationReport parsed;
  std::string error;
  ASSERT_TRUE(ParseReport(SerializeReport(fuzzed), &parsed, &error)) << error;
  EXPECT_EQ(parsed.verdict, Verdict::kTriggeredByFuzzing);
  EXPECT_EQ(parsed.type, ResultType::kFuzzed);
  EXPECT_TRUE(parsed.fuzz_attempted);
  EXPECT_EQ(parsed.fuzz_execs, 41234u);
  EXPECT_EQ(parsed.fuzz_execs_to_crash, 40999u);
  EXPECT_EQ(parsed.fuzz_best_distance, 2.25);
  EXPECT_EQ(parsed.fuzz_seed, 1337u);

  // The seeded mutation sweep also covers the fuzz block: mutants of a
  // campaign report must never crash the parser.
  const std::string base = SerializeReport(fuzzed);
  std::mt19937 rng(555u);
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutant = base;
    const std::size_t pos = rng() % mutant.size();
    switch (rng() % 3) {
      case 0: mutant[pos] = static_cast<char>(rng() & 0xff); break;
      case 1: mutant.erase(pos, 1); break;
      default: mutant.insert(pos, 1, static_cast<char>(rng() & 0xff)); break;
    }
    MustSurvive(mutant);
  }
}

TEST(ReportIoFuzz, FramingHelpersSurviveMutatedFrames) {
  // The worker-report framing (prefix + json) used on both the pool
  // and serve paths, fed the same mutation treatment.
  const std::string frame = MarshalWorkerReport(SampleReport());
  std::mt19937 rng(977u);
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutant = frame;
    const std::size_t pos = rng() % mutant.size();
    mutant[pos] = static_cast<char>(rng() & 0xff);
    VerificationReport report;
    std::string error;
    if (!UnmarshalWorkerReport(mutant, &report, &error)) {
      EXPECT_FALSE(error.empty());
    }
  }
}

}  // namespace
}  // namespace octopocs::core
