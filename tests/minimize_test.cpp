// PoC minimizer: delta debugging over MiniVM inputs.
#include <gtest/gtest.h>

#include "core/minimize.h"
#include "core/octopocs.h"
#include "corpus/pairs.h"
#include "vm/asm.h"

namespace octopocs::core {
namespace {

TEST(Minimize, DropsIrrelevantTail) {
  // Crash depends only on byte 0 being >= 0x80; 63 bytes of tail noise.
  const vm::Program p = vm::Assemble(R"(
    func main()
      movi %n, 64
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %c, %buf, 0
      movi %lim, 4
      alloc %tbl, %lim
      add %ptr, %tbl, %c
      movi %one, 1
      store.1 %one, %ptr, 0     ; OOB when c >= 4+guard... c large
      ret %c
  )");
  Bytes poc(64, 0x11);
  poc[0] = 0xF0;
  ASSERT_TRUE(vm::IsVulnerabilityCrash(vm::RunProgram(p, poc).trap));

  const MinimizeResult r = MinimizePoc(p, poc);
  EXPECT_LE(r.poc.size(), 1u);
  EXPECT_EQ(r.original_size, 64u);
  EXPECT_TRUE(vm::IsVulnerabilityCrash(vm::RunProgram(p, r.poc).trap));
}

TEST(Minimize, PreservesTrapSignature) {
  const corpus::Pair pair = corpus::BuildPair(1);
  MinimizeOptions opts;
  const MinimizeResult r = MinimizePoc(pair.s, pair.poc, opts);
  EXPECT_LE(r.poc.size(), pair.poc.size());
  const auto run = vm::RunProgram(pair.s, r.poc);
  EXPECT_EQ(run.trap, pair.expected_trap);
}

TEST(Minimize, ZeroesIrrelevantBytesInPlace) {
  // Byte 1 is load-bearing (the crash index); byte 0 is a magic that
  // must stay; bytes 2..7 are noise the minimizer can zero or drop.
  const vm::Program p = vm::Assemble(R"(
    func main()
      movi %n, 8
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %m, %buf, 0
      movi %want, 0x4d
      cmpeq %ok, %m, %want
      br %ok, go, out
    go:
      load.1 %c, %buf, 1
      movi %lim, 4
      alloc %tbl, %lim
      add %ptr, %tbl, %c
      movi %one, 1
      store.1 %one, %ptr, 0
      ret %c
    out:
      ret %m
  )");
  Bytes poc{0x4D, 0xF0, 9, 9, 9, 9, 9, 9};
  const MinimizeResult r = MinimizePoc(p, poc);
  ASSERT_GE(r.poc.size(), 2u);
  EXPECT_EQ(r.poc[0], 0x4D);  // magic kept
  EXPECT_EQ(r.poc[1], 0xF0);  // crash byte kept
  EXPECT_LE(r.poc.size(), 2u);
}

TEST(Minimize, RejectsNonCrashingInput) {
  const corpus::Pair pair = corpus::BuildPair(1);
  EXPECT_THROW(MinimizePoc(pair.s, Bytes{'M', 'J', 'P', 'G'}),
               std::invalid_argument);
}

TEST(Minimize, MinimizesReformedPocs) {
  // The reformed PoC from the motivating pair can be minimized further
  // while preserving the null dereference.
  const corpus::Pair pair = corpus::BuildPair(8);
  const auto report = VerifyPair(pair);
  ASSERT_TRUE(report.poc_generated);
  const MinimizeResult r = MinimizePoc(pair.t, report.reformed_poc);
  EXPECT_LE(r.poc.size(), report.reformed_poc.size());
  EXPECT_EQ(vm::RunProgram(pair.t, r.poc).trap, vm::TrapKind::kNullDeref);
}

TEST(Minimize, RespectsRunBudget) {
  const corpus::Pair pair = corpus::BuildPair(6);
  MinimizeOptions opts;
  opts.max_runs = 8;  // almost no budget: must still return a crasher
  const MinimizeResult r = MinimizePoc(pair.s, pair.poc, opts);
  EXPECT_LE(r.runs, 8u + 1u);
  EXPECT_TRUE(vm::IsVulnerabilityCrash(vm::RunProgram(pair.s, r.poc).trap));
}

}  // namespace
}  // namespace octopocs::core
