#include <gtest/gtest.h>

#include "support/bytes.h"
#include "support/hex.h"
#include "support/rng.h"
#include "support/small_set.h"

namespace octopocs {
namespace {

TEST(Bytes, AppendLeLittleEndian) {
  Bytes b;
  AppendLe(b, 0x11223344, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x44);
  EXPECT_EQ(b[1], 0x33);
  EXPECT_EQ(b[2], 0x22);
  EXPECT_EQ(b[3], 0x11);
}

TEST(Bytes, ReadLeRoundTrips) {
  Bytes b;
  AppendLe(b, 0xDEADBEEFCAFEF00DULL, 8);
  EXPECT_EQ(ReadLe(b, 0, 8), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(ReadLe(b, 0, 4), 0xCAFEF00DULL);
  EXPECT_EQ(ReadLe(b, 4, 4), 0xDEADBEEFULL);
}

TEST(Bytes, ReadLeShortDataZeroFills) {
  Bytes b{0xAB};
  EXPECT_EQ(ReadLe(b, 0, 4), 0xABu);
  EXPECT_EQ(ReadLe(b, 5, 2), 0u);
}

TEST(Hex, RoundTrip) {
  const Bytes data{0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(ToHex(data), "de ad be ef");
  EXPECT_EQ(FromHex("de ad be ef"), data);
  EXPECT_EQ(FromHex("DEADBEEF"), data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(FromHex("xz"), std::invalid_argument);
  EXPECT_THROW(FromHex("abc"), std::invalid_argument);
  EXPECT_THROW(FromHex("a bc"), std::invalid_argument);
}

TEST(Hex, DumpHasAsciiGutter) {
  Bytes data;
  AppendStr(data, "GIF87a");
  const std::string dump = HexDump(data);
  EXPECT_NE(dump.find("|GIF87a|"), std::string::npos);
  EXPECT_NE(dump.find("47 49 46"), std::string::npos);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    const auto v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(SmallSet, InsertKeepsSortedUnique) {
  SortedSmallSet<std::uint32_t> s;
  s.Insert(5);
  s.Insert(1);
  s.Insert(5);
  s.Insert(3);
  EXPECT_EQ(s.items(), (std::vector<std::uint32_t>{1, 3, 5}));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
}

TEST(SmallSet, UnionMerges) {
  SortedSmallSet<std::uint32_t> a{1, 3, 5};
  SortedSmallSet<std::uint32_t> b{2, 3, 6};
  a.UnionWith(b);
  EXPECT_EQ(a.items(), (std::vector<std::uint32_t>{1, 2, 3, 5, 6}));
}

TEST(SmallSet, UnionWithEmptyIsIdentity) {
  SortedSmallSet<std::uint32_t> a{4, 7};
  SortedSmallSet<std::uint32_t> empty;
  a.UnionWith(empty);
  EXPECT_EQ(a.size(), 2u);
  empty.UnionWith(a);
  EXPECT_EQ(empty, a);
}

}  // namespace
}  // namespace octopocs
