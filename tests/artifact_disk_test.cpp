// Persistent artifact tier (core/artifact_disk.h): durability and heal
// rules, mirroring the journal's torn-write property test byte for
// byte. A store that survived a SIGKILL must reopen with at worst its
// torn trailing index record dropped; a corrupt payload must read as a
// miss, never as data; and a warm reopen must return the exact bytes
// the cold store was given.
#include "core/artifact_disk.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/report_io.h"
#include "support/fault.h"

namespace octopocs::core {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "octopocs_disk_" + name;
  // Start fresh: stale files from a previous run would change the
  // truncation offsets the matrix below depends on.
  std::remove((dir + "/segments.dat").c_str());
  std::remove((dir + "/index.dat").c_str());
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Bytes Payload(const std::string& text) {
  return Bytes(text.begin(), text.end());
}

ArtifactKey Key(std::uint64_t n) { return ArtifactKey{n, n * 31 + 7}; }

TEST(DiskArtifactStore, PutGetRoundTripAndIdempotence) {
  const std::string dir = TempDir("roundtrip");
  std::string error;
  auto store = DiskArtifactStore::Open(dir, &error);
  ASSERT_NE(store, nullptr) << error;

  const Bytes payload = Payload("artifact body \x01\xff bytes");
  EXPECT_FALSE(store->Contains(Key(1)));
  EXPECT_TRUE(store->Put(Key(1), ByteView(payload)));
  EXPECT_TRUE(store->Contains(Key(1)));
  // Idempotent: a second Put of the same key is a no-op, not a second
  // segment append.
  EXPECT_TRUE(store->Put(Key(1), ByteView(payload)));
  EXPECT_EQ(store->stats().stores, 1u);

  const auto got = store->Get(Key(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_FALSE(store->Get(Key(2)).has_value());
  EXPECT_EQ(store->stats().hits, 1u);
  EXPECT_EQ(store->stats().misses, 1u);
}

TEST(DiskArtifactStore, EveryTruncationOfTheIndexHealsOnReopen) {
  // Build a reference store with three artifacts, then replay every
  // possible torn write of the index file — from an empty file through
  // a partial header through every byte of the last record. Reopen must
  // always succeed, keep exactly the entries whose records survived
  // whole, and read each survivor back intact.
  const std::string dir = TempDir("torn");
  std::string error;
  const Bytes payloads[3] = {Payload("alpha"), Payload("beta-beta"),
                             Payload("gamma payload")};
  {
    auto store = DiskArtifactStore::Open(dir, &error);
    ASSERT_NE(store, nullptr) << error;
    for (std::uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(store->Put(Key(i), ByteView(payloads[i])));
    }
  }
  const std::string index_path = dir + "/index.dat";
  const std::string full = ReadFileBytes(index_path);
  constexpr std::size_t kHeaderBytes = 12;
  constexpr std::size_t kRecordBytes = 40;
  ASSERT_EQ(full.size(), kHeaderBytes + 3 * kRecordBytes);

  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    WriteFileBytes(index_path, full.substr(0, keep));
    auto store = DiskArtifactStore::Open(dir, &error);
    ASSERT_NE(store, nullptr) << "truncation at " << keep << ": " << error;
    const std::size_t whole_records =
        keep < kHeaderBytes ? 0 : (keep - kHeaderBytes) / kRecordBytes;
    EXPECT_EQ(store->size(), whole_records) << keep;
    for (std::uint64_t i = 0; i < 3; ++i) {
      const auto got = store->Get(Key(i));
      if (i < whole_records) {
        ASSERT_TRUE(got.has_value()) << keep << " key " << i;
        EXPECT_EQ(*got, payloads[i]) << keep << " key " << i;
      } else {
        EXPECT_FALSE(got.has_value()) << keep << " key " << i;
      }
    }
    // keep == 0 reopens as a brand-new store (nothing to heal); any
    // other non-boundary length is a torn header or record.
    const bool torn =
        keep != 0 && keep != kHeaderBytes + whole_records * kRecordBytes;
    EXPECT_EQ(store->stats().healed_records != 0, torn) << keep;
    // Re-adding the dropped artifacts must land on a clean tail: a
    // fresh reopen then sees all three whole.
    for (std::uint64_t i = whole_records; i < 3; ++i) {
      ASSERT_TRUE(store->Put(Key(i), ByteView(payloads[i]))) << keep;
    }
    store.reset();
    auto healed = DiskArtifactStore::Open(dir, &error);
    ASSERT_NE(healed, nullptr) << keep << ": " << error;
    EXPECT_EQ(healed->size(), 3u) << keep;
    EXPECT_EQ(healed->stats().healed_records, 0u) << keep;
    healed.reset();
    // Restore the reference files for the next truncation point.
    WriteFileBytes(index_path, full);
  }
}

TEST(DiskArtifactStore, MidFileCorruptionIsRefusedNotHealed) {
  // Garbage in the middle of the index is not a torn tail — it means
  // the file was damaged in place, and silently dropping the suffix
  // would serve an artifact set that never existed. Refuse, like the
  // journal refuses mid-file corruption.
  const std::string dir = TempDir("midfile");
  std::string error;
  {
    auto store = DiskArtifactStore::Open(dir, &error);
    ASSERT_NE(store, nullptr) << error;
    for (std::uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(store->Put(Key(i), ByteView(Payload("x"))));
    }
  }
  const std::string index_path = dir + "/index.dat";
  std::string bytes = ReadFileBytes(index_path);
  bytes[12 + 40] ^= 0x5a;  // record 1's magic — records 1 and 2 exist after it
  WriteFileBytes(index_path, bytes);
  EXPECT_EQ(DiskArtifactStore::Open(dir, &error), nullptr);
  EXPECT_NE(error.find("malformed"), std::string::npos) << error;
}

TEST(DiskArtifactStore, CorruptPayloadIsAMissNeverServed) {
  const std::string dir = TempDir("bitrot");
  std::string error;
  {
    auto store = DiskArtifactStore::Open(dir, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Put(Key(1), ByteView(Payload("precious bytes"))));
  }
  const std::string seg_path = dir + "/segments.dat";
  std::string seg = ReadFileBytes(seg_path);
  seg[3] ^= 0x01;
  WriteFileBytes(seg_path, seg);

  auto store = DiskArtifactStore::Open(dir, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_FALSE(store->Get(Key(1)).has_value());
  EXPECT_EQ(store->stats().corrupt_drops, 1u);
  // The entry was forgotten: the next lookup is a plain cheap miss.
  EXPECT_FALSE(store->Get(Key(1)).has_value());
  EXPECT_EQ(store->stats().corrupt_drops, 1u);
}

TEST(DiskArtifactStore, IndexRecordPastSegmentEndIsDropped) {
  // The index record fsync'd but the segment bytes did not survive the
  // crash (or the segment was truncated by hand): the dangling record
  // and everything after it must be dropped at Open.
  const std::string dir = TempDir("dangling");
  std::string error;
  {
    auto store = DiskArtifactStore::Open(dir, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Put(Key(1), ByteView(Payload("first"))));
    ASSERT_TRUE(store->Put(Key(2), ByteView(Payload("second"))));
  }
  const std::string seg_path = dir + "/segments.dat";
  const std::string seg = ReadFileBytes(seg_path);
  WriteFileBytes(seg_path, seg.substr(0, seg.size() - 3));

  auto store = DiskArtifactStore::Open(dir, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->size(), 1u);
  const auto got = store->Get(Key(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Payload("first"));
  EXPECT_FALSE(store->Get(Key(2)).has_value());
}

TEST(DiskArtifactStore, ColdAndWarmReadsAreByteIdentical) {
  // The serve-layer contract in miniature: what a cold store was given
  // is exactly what a warm reopen returns, byte for byte — including a
  // serialized verification report, the daemon's actual payload.
  const std::string dir = TempDir("coldwarm");
  std::string error;
  VerificationReport report;
  report.verdict = Verdict::kTriggered;
  report.type = ResultType::kTypeII;
  report.detail = "bytes with \"escapes\"\n";
  report.reformed_poc = {0x00, 0xff, 0x41};
  report.timings.total_seconds = 0.125;
  const std::string json = SerializeReport(report);
  {
    auto store = DiskArtifactStore::Open(dir, &error);
    ASSERT_NE(store, nullptr) << error;
    ASSERT_TRUE(store->Put(
        Key(9), ByteView(reinterpret_cast<const std::uint8_t*>(json.data()),
                         json.size())));
  }
  auto store = DiskArtifactStore::Open(dir, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->stats().loaded_records, 1u);
  const auto got = store->Get(Key(9));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(std::string(got->begin(), got->end()), json);
  VerificationReport warm;
  ASSERT_TRUE(ParseReport(std::string(got->begin(), got->end()), &warm,
                          &error));
  EXPECT_EQ(SerializeReport(warm), json);
}

TEST(DiskArtifactStore, InjectedWriteFaultDegradesToCacheless) {
  const std::string dir = TempDir("fault");
  std::string error;
  auto store = DiskArtifactStore::Open(dir, &error);
  ASSERT_NE(store, nullptr) << error;

  support::fault::Arm(support::FaultSite::kDiskStoreWrite);
  EXPECT_FALSE(store->Put(Key(1), ByteView(Payload("doomed"))));
  support::fault::Disarm();
  EXPECT_EQ(store->stats().store_errors, 1u);
  EXPECT_FALSE(store->Contains(Key(1)));
  // One failed write poisons nothing: the next Put succeeds.
  EXPECT_TRUE(store->Put(Key(1), ByteView(Payload("fine now"))));
  const auto got = store->Get(Key(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Payload("fine now"));
}

}  // namespace
}  // namespace octopocs::core
