// Execution tracer output.
#include <gtest/gtest.h>

#include "vm/asm.h"
#include "vm/trace.h"

namespace octopocs::vm {
namespace {

TEST(Tracer, RecordsCallsReadsAndMemory) {
  const Program p = Assemble(R"(
    func main()
      movi %n, 4
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %c, %buf, 0
      call %v, work(%c)
      ret %v
    func work(c)
      addi %r, %c, 1
      ret %r
  )");
  ExecutionTracer tracer;
  tracer.BindProgram(&p);
  Interpreter interp(p, Bytes{7, 8, 9, 10});
  interp.AddObserver(&tracer);
  const auto r = interp.Run();
  EXPECT_EQ(r.trap, TrapKind::kNone);
  const std::string& t = tracer.text();
  EXPECT_NE(t.find("call main()"), std::string::npos);
  EXPECT_NE(t.find("call work(0x7)"), std::string::npos);
  EXPECT_NE(t.find("read file[0..4)"), std::string::npos);
  EXPECT_NE(t.find("ret work = 0x8"), std::string::npos);
  EXPECT_NE(t.find("load.1"), std::string::npos);
  EXPECT_FALSE(tracer.truncated());
}

TEST(Tracer, TruncatesAtLineBudget) {
  const Program p = Assemble(R"(
    func main()
      movi %i, 0
      movi %n, 1000
    loop:
      cmpltu %more, %i, %n
      br %more, body, done
    body:
      addi %i, %i, 1
      jmp loop
    done:
      ret %i
  )");
  ExecutionTracer tracer(/*max_lines=*/20);
  tracer.BindProgram(&p);
  Interpreter interp(p, {});
  interp.AddObserver(&tracer);
  interp.Run();
  EXPECT_TRUE(tracer.truncated());
  EXPECT_EQ(tracer.lines(), 20u);
  EXPECT_NE(tracer.text().find("trace truncated"), std::string::npos);
}

TEST(Tracer, IndentsByCallDepth) {
  const Program p = Assemble(R"(
    func main()
      movi %x, 1
      call %v, outer(%x)
      ret %v
    func outer(a)
      call %v, inner(%a)
      ret %v
    func inner(a)
      ret %a
  )");
  ExecutionTracer tracer;
  tracer.BindProgram(&p);
  Interpreter interp(p, {});
  interp.AddObserver(&tracer);
  interp.Run();
  // inner's call line is indented two levels (main + outer).
  EXPECT_NE(tracer.text().find("    call inner(0x1)"), std::string::npos);
}

}  // namespace
}  // namespace octopocs::vm
