// Format writers: structural invariants of the miniature file formats.
#include <gtest/gtest.h>

#include "formats/formats.h"

namespace octopocs::formats {
namespace {

TEST(Mjpg, WriterLayout) {
  const Bytes f = WriteMjpg({{kMjpgQuantTable, {0, 1, 2}}, {kMjpgEnd, {}}});
  ASSERT_GE(f.size(), 4u + 3u + 3u + 3u);
  EXPECT_EQ(f[0], 'M');
  EXPECT_EQ(f[3], 'G');
  EXPECT_EQ(f[4], kMjpgQuantTable);
  EXPECT_EQ(ReadLe(f, 5, 2), 3u);  // payload length
  EXPECT_EQ(f[10], kMjpgEnd);
}

TEST(Mjpg, PocsHaveExpectedTriggers) {
  const Bytes quant = MjpgQuantIndexPoc();
  // The scan segment's quant index byte must exceed the 4-slot table.
  // Layout: magic(4) quant-seg(3+5) scan-hdr(3) then qidx.
  EXPECT_EQ(quant[4 + 3 + 5 + 3], 9);

  const Bytes dims = MjpgDimsOverflowPoc();
  EXPECT_EQ(ReadLe(dims, 7, 2) * ReadLe(dims, 9, 2), 0x10000u);
}

TEST(Mj2k, ZeroComponentPoc) {
  const Bytes f = Mj2kZeroComponentPoc();
  EXPECT_EQ(f[0], 'M');
  EXPECT_EQ(f[4], kMj2kHeader);
  EXPECT_EQ(f[7], 0);  // ncomp
}

TEST(Mgif, WriterAndPoc) {
  const Bytes valid = MgifValidFile();
  EXPECT_EQ(valid[3], '8');
  EXPECT_EQ(valid[5], 'a');
  EXPECT_EQ(valid.back(), kMgifTrailer);

  const Bytes poc = MgifCodeSizePoc();
  EXPECT_EQ(poc[5], 'x');  // the invalid version byte
  // Two image blocks before the trailer.
  int image_blocks = 0;
  for (std::size_t i = 10; i < poc.size(); ++i) {
    if (poc[i] == kMgifImage) ++image_blocks;
  }
  EXPECT_GE(image_blocks, 2);
}

TEST(Mtif, EntriesLittleEndian) {
  const Bytes f = WriteMtif({{kTifTagPageName, 24, 0x11223344}});
  EXPECT_EQ(ReadLe(f, 0, 4), 0x002A4949u);  // "II*\0"
  EXPECT_EQ(ReadLe(f, 4, 2), 1u);           // one entry
  EXPECT_EQ(ReadLe(f, 6, 2), 0x013Du);
  EXPECT_EQ(ReadLe(f, 8, 2), 24u);
  EXPECT_EQ(ReadLe(f, 10, 4), 0x11223344u);
}

TEST(Mpdf, ObjectContainer) {
  const Bytes f = WriteMpdf({{7, kPdfObjMeta, {1, 2, 3}}});
  EXPECT_EQ(ReadLe(f, 0, 4), 0x46445025u);  // "%PDF"
  EXPECT_EQ(f[4], 1);                        // nobj
  EXPECT_EQ(f[5], 7);                        // id
  EXPECT_EQ(f[6], kPdfObjMeta);
  EXPECT_EQ(ReadLe(f, 7, 2), 3u);
}

TEST(Mpdf, PageTableHasFlagAndBase6) {
  const Bytes f = MpdfCyclePoc();
  EXPECT_EQ(f[4], 2);           // npages
  EXPECT_EQ(f[5], 1);           // render flag
  EXPECT_EQ(f[6], kPdfObjPage); // rec 0 at offset 6
  EXPECT_EQ(f[7], 1);           // rec 0 → rec 1
  EXPECT_EQ(f[10], kPdfObjPage);
  EXPECT_EQ(f[11], 0);          // rec 1 → rec 0: the cycle
}

TEST(Mpdf, EmbeddedJ2kNests) {
  const Bytes f = MpdfEmbeddedJ2kPoc();
  const Bytes j2k = Mj2kZeroComponentPoc();
  // The embedded stream starts right after the first object header.
  ASSERT_GE(f.size(), 9 + j2k.size());
  for (std::size_t i = 0; i < j2k.size(); ++i) {
    EXPECT_EQ(f[9 + i], j2k[i]) << "offset " << i;
  }
}

TEST(Mpdf, MetaWrapLength) {
  const Bytes f = MpdfMetaWrapPoc();
  EXPECT_EQ(ReadLe(f, 7, 2), 0x8001u);
  EXPECT_EQ((0x8001 * 2) & 0xFFFF, 2);  // the wrap that drives CWE-190
}

}  // namespace
}  // namespace octopocs::formats
