// Clone detector (VUDDY substitute): fingerprinting semantics and
// end-to-end ℓ recovery across the corpus.
#include <gtest/gtest.h>

#include "clone/detector.h"
#include "core/octopocs.h"
#include "corpus/pairs.h"
#include "vm/asm.h"

namespace octopocs::clone {
namespace {

using vm::Assemble;
using vm::Program;

TEST(Fingerprint, StableAcrossPrograms) {
  // The same function body embedded in two different programs (with
  // different function-table layouts) must fingerprint identically.
  const char* shared = R"(
    func helper(a)
      addi %r, %a, 7
      ret %r
  )";
  const Program p1 = vm::AssembleParts({shared, R"(
    func main()
      movi %x, 1
      call %v, helper(%x)
      ret %v
  )"});
  const Program p2 = vm::AssembleParts({R"(
    func pad1()
      ret
    func pad2()
      ret
  )", shared, R"(
    func main()
      movi %x, 2
      call %v, helper(%x)
      ret %v
  )"});
  EXPECT_EQ(Fingerprint(p1, p1.FindFunction("helper")),
            Fingerprint(p2, p2.FindFunction("helper")));
  // While the two mains differ (different immediate).
  EXPECT_NE(Fingerprint(p1, p1.FindFunction("main")),
            Fingerprint(p2, p2.FindFunction("main")));
}

TEST(Fingerprint, CalleeRenameChangesFingerprint) {
  const Program a = Assemble(R"(
    func main()
      movi %x, 1
      call %v, alpha(%x)
      ret %v
    func alpha(a)
      ret %a
  )");
  const Program b = Assemble(R"(
    func main()
      movi %x, 1
      call %v, beta(%x)
      ret %v
    func beta(a)
      ret %a
  )");
  // alpha/beta bodies are clones...
  EXPECT_EQ(Fingerprint(a, a.FindFunction("alpha")),
            Fingerprint(b, b.FindFunction("beta")));
  // ...but the mains call differently-named functions.
  EXPECT_NE(Fingerprint(a, a.FindFunction("main")),
            Fingerprint(b, b.FindFunction("main")));
}

TEST(Fingerprint, AbstractionMasksImmediates) {
  const Program a = Assemble(R"(
    func main()
      ret
    func check(x)
      movi %lim, 64
      cmpltu %ok, %x, %lim
      ret %ok
  )");
  const Program b = Assemble(R"(
    func main()
      ret
    func check(x)
      movi %lim, 128
      cmpltu %ok, %x, %lim
      ret %ok
  )");
  EXPECT_NE(Fingerprint(a, a.FindFunction("check")),
            Fingerprint(b, b.FindFunction("check")));
  EXPECT_EQ(Fingerprint(a, a.FindFunction("check"), Abstraction::kAbstract),
            Fingerprint(b, b.FindFunction("check"), Abstraction::kAbstract));
}

TEST(Detector, RecoversRenamedClone) {
  const Program s = Assemble(R"(
    func main()
      movi %x, 1
      call %v, decode(%x)
      ret %v
    func decode(a)
      addi %r, %a, 1
      ret %r
  )");
  const Program t = Assemble(R"(
    func main()
      movi %x, 2
      movi %y, 3
      add %x, %x, %y
      call %v, decode_v2(%x)
      ret %v
    func decode_v2(a)
      addi %r, %a, 1
      ret %r
  )");
  const auto matches = DetectClones(s, t);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].name_in_s, "decode");
  EXPECT_EQ(matches[0].name_in_t, "decode_v2");
}

class CorpusCloneRecovery : public ::testing::TestWithParam<int> {};

TEST_P(CorpusCloneRecovery, DetectsDeclaredSharedFunctions) {
  const corpus::Pair pair = corpus::BuildPair(GetParam());
  const auto detected = DetectSharedFunctions(pair.s, pair.t);
  for (const std::string& fn : pair.shared_functions) {
    EXPECT_NE(std::find(detected.begin(), detected.end(), fn),
              detected.end())
        << "pair " << pair.idx << ": ℓ member '" << fn << "' not detected";
  }
  // The harness mains must never be reported as clones.
  EXPECT_EQ(std::find(detected.begin(), detected.end(), "main"),
            detected.end())
      << "pair " << pair.idx;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, CorpusCloneRecovery,
                         ::testing::Range(1, 16));

TEST(Detector, DrivesThePipelineWithoutManualL) {
  // End-to-end: detect ℓ automatically, then verify the motivating pair.
  const corpus::Pair pair = corpus::BuildPair(8);
  const auto detected = DetectSharedFunctions(pair.s, pair.t);
  core::Octopocs pipeline(pair.s, pair.t, detected, pair.poc);
  const auto report = pipeline.Verify();
  EXPECT_EQ(report.verdict, core::Verdict::kTriggered) << report.detail;
  EXPECT_EQ(report.ep_name, "mj2k_decode");
}

}  // namespace
}  // namespace octopocs::clone
