// Robustness: deadlines, cancellation, fault injection, and graceful
// degradation (DESIGN.md §9).
//
// The contract under test: no matter how a phase dies — wall-clock
// expiry, an external kill switch, an injected tooling fault, a solver
// budget — the pipeline returns a well-formed kFailure report that names
// the phase and the failure class, never a wrong verdict, a crash, or a
// hang. Deadline tests use deliberately pathological workloads (an
// unbounded concrete loop; an UNSAT multiplication constraint whose CSP
// search is astronomically large) so that only the clock can end them.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/octopocs.h"
#include "core/parallel_verify.h"
#include "corpus/pairs.h"
#include "support/deadline.h"
#include "support/fault.h"
#include "support/thread_pool.h"
#include "vm/asm.h"

namespace octopocs::core {
namespace {

using support::CancelToken;
using support::Deadline;
using support::FaultSite;

double ElapsedSeconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       from)
      .count();
}

// Same shared ℓ as adaptive_theta_test: 1-byte read, OOB store when the
// byte is >= 4. S(0xF7) crashes inside vuln, so ep discovery, taint,
// and the whole pipeline run on any T that links it.
constexpr const char* kShared = R"(
  func vuln(mode)
    movi %one, 1
    alloc %rec, %one
    read %got, %rec, %one
    load.1 %c, %rec, 0
    movi %lim, 4
    alloc %tbl, %lim
    add %p, %tbl, %c
    store.1 %one, %p, 0      ; OOB when c >= 4
    ret %c
)";

constexpr const char* kSMain = R"(
  func main()
    movi %zero, 0
    call %v, vuln(%zero)
    ret %v
)";

// T whose path condition is UNSAT but astronomically expensive to
// refute: b0*b1 + b2*b3 caps at 130050, so == 130051 has no model, yet
// the CSP search must enumerate ~256^3 partial assignments to prove it.
// Only a deadline (or a step budget) can end P2/P3 on this program.
constexpr const char* kHardSolverTMain = R"(
  func main()
    movi %four, 4
    alloc %buf, %four
    read %got, %buf, %four
    load.1 %b0, %buf, 0
    load.1 %b1, %buf, 1
    load.1 %b2, %buf, 2
    load.1 %b3, %buf, 3
    mul %p0, %b0, %b1
    mul %p1, %b2, %b3
    add %s, %p0, %p1
    movi %k, 130051
    cmpeq %ok, %s, %k
    assert %ok
    movi %zero, 0
    call %v, vuln(%zero)
    ret %v
)";

// T with a genuine two-way symbolic fork: both directions reach ep, so
// StepBranch must clone the state (the kStateFork fault site).
constexpr const char* kForkingTMain = R"(
  func main()
    movi %one, 1
    alloc %buf, %one
    read %got, %buf, %one
    load.1 %c, %buf, 0
    movi %k, 16
    cmpltu %small, %c, %k
    br %small, lo, hi
  lo:
    movi %zero, 0
    call %v, vuln(%zero)
    ret %v
  hi:
    movi %zero, 0
    call %w, vuln(%zero)
    ret %w
)";

// A program that never crashes and never terminates on its own —
// preprocessing can only end by fuel or by the clock.
constexpr const char* kHangProgram = R"(
  func spin(x)
    movi %i, 0
  loop:
    addi %i, %i, 1
    jmp loop
  func main()
    movi %zero, 0
    call %v, spin(%zero)
    ret %v
)";

corpus::Pair HardSolverPair() {
  corpus::Pair pair;
  pair.idx = 99;
  pair.s_name = "synth-slow";
  pair.t_name = "synth-slow-t";
  pair.vuln_id = "SYNTH-HARD-SOLVER";
  pair.cwe = "CWE-119";
  pair.expected = corpus::ExpectedResult::kFailure;
  pair.s = vm::AssembleParts({kShared, kSMain});
  pair.t = vm::AssembleParts({kShared, kHardSolverTMain});
  pair.poc = Bytes{0xF7};
  pair.shared_functions = {"vuln"};
  return pair;
}

void ExpectSameOutcome(const VerificationReport& a,
                       const VerificationReport& b) {
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.reformed_poc, b.reformed_poc);
  EXPECT_EQ(a.failed_phase, b.failed_phase);
  EXPECT_EQ(a.exception_contained, b.exception_contained);
}

// ---------------------------------------------------------------------------
// Deadline / CancelToken units.

TEST(DeadlineUnit, DefaultNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 1e18);
}

TEST(DeadlineUnit, ZeroBudgetExpiresImmediately) {
  const Deadline d = Deadline::AfterMillis(0);
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineUnit, SoonerPicksTheTighterBudget) {
  EXPECT_TRUE(Deadline::Sooner(Deadline::Never(), Deadline::Never())
                  .unlimited());
  EXPECT_TRUE(
      Deadline::Sooner(Deadline::Never(), Deadline::AfterMillis(0))
          .Expired());
  EXPECT_TRUE(
      Deadline::Sooner(Deadline::AfterMillis(0), Deadline::Never())
          .Expired());
  // Expired vs. one-hour-away: the expired one must win either way.
  const Deadline hour = Deadline::AfterMillis(3'600'000);
  EXPECT_TRUE(Deadline::Sooner(hour, Deadline::AfterMillis(0)).Expired());
  EXPECT_TRUE(Deadline::Sooner(Deadline::AfterMillis(0), hour).Expired());
}

TEST(DeadlineUnit, SoonerOfTwoBoundedBudgetsKeepsTheTighterPoint) {
  // Sooner must select one of its operands, not synthesize a new
  // instant: the result expires within the tighter operand's hour, in
  // either argument order.
  const auto now = Deadline::Clock::now();
  const Deadline one_hour = Deadline::At(now + std::chrono::hours(1));
  const Deadline two_hours = Deadline::At(now + std::chrono::hours(2));
  for (const Deadline& sooner : {Deadline::Sooner(one_hour, two_hours),
                                 Deadline::Sooner(two_hours, one_hour)}) {
    EXPECT_FALSE(sooner.unlimited());
    EXPECT_FALSE(sooner.Expired());
    EXPECT_NEAR(sooner.RemainingSeconds(), 3600.0, 5.0);
  }
  // One bounded side: the bounded one comes back however far away it is.
  EXPECT_FALSE(Deadline::Sooner(two_hours, Deadline::Never()).unlimited());
  EXPECT_FALSE(Deadline::Sooner(Deadline::Never(), two_hours).Expired());
  // Two equal instants collapse to that same instant.
  EXPECT_NEAR(Deadline::Sooner(one_hour, one_hour).RemainingSeconds(),
              3600.0, 5.0);
}

TEST(CancelTokenUnit, DefaultTokenNeverTrips) {
  CancelToken tok;
  EXPECT_FALSE(tok.CanExpire());
  for (int i = 0; i < 5000; ++i) EXPECT_FALSE(tok.ShouldStop());
  EXPECT_FALSE(tok.Check());
}

TEST(CancelTokenUnit, ExpiredDeadlineTripsWithinOneStride) {
  CancelToken immediate{Deadline::AfterMillis(0)};
  EXPECT_TRUE(immediate.Check());

  // ShouldStop only consults the clock every kStride polls — but no
  // more than one stride may pass before an expired token trips.
  CancelToken strided{Deadline::AfterMillis(0)};
  bool tripped = false;
  for (int i = 0; i < 1024 && !tripped; ++i) tripped = strided.ShouldStop();
  EXPECT_TRUE(tripped);
  // Sticky: every later poll agrees.
  EXPECT_TRUE(strided.ShouldStop());
  EXPECT_TRUE(strided.Check());
}

TEST(CancelTokenUnit, KillSwitchFlagTripIsSticky) {
  std::atomic<bool> flag{false};
  CancelToken tok{Deadline::Never(), &flag};
  EXPECT_TRUE(tok.CanExpire());
  EXPECT_FALSE(tok.Check());
  flag.store(true);
  EXPECT_TRUE(tok.Check());
  flag.store(false);  // lowering the flag does not un-trip the token
  EXPECT_TRUE(tok.Check());
}

// ---------------------------------------------------------------------------
// Fault-injection registry units.

class FaultRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override { support::fault::Disarm(); }
};

TEST_F(FaultRegistryTest, SkipCountsPollsBeforeTheOneShotFiring) {
  support::fault::Arm(FaultSite::kSolverStep, 2);
  EXPECT_TRUE(support::fault::armed());
  EXPECT_FALSE(support::fault::Poll(FaultSite::kSolverStep));
  EXPECT_FALSE(support::fault::Poll(FaultSite::kSolverStep));
  EXPECT_TRUE(support::fault::Poll(FaultSite::kSolverStep));
  // One-shot: the registry disarmed itself at the firing poll.
  EXPECT_FALSE(support::fault::Poll(FaultSite::kSolverStep));
  EXPECT_FALSE(support::fault::armed());
  EXPECT_EQ(support::fault::fired_count(), 1u);
}

TEST_F(FaultRegistryTest, OtherSitesNeverObserveAnArmedFault) {
  support::fault::Arm(FaultSite::kTaintStep);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(support::fault::Poll(FaultSite::kSolverStep));
    EXPECT_FALSE(support::fault::Poll(FaultSite::kCfgBuild));
  }
  EXPECT_TRUE(support::fault::Poll(FaultSite::kTaintStep));
}

TEST_F(FaultRegistryTest, MaybeThrowRaisesFaultErrorNamingTheSite) {
  support::fault::Arm(FaultSite::kCfgBuild);
  try {
    support::fault::MaybeThrow(FaultSite::kCfgBuild);
    FAIL() << "armed MaybeThrow did not throw";
  } catch (const support::FaultError& e) {
    EXPECT_NE(std::string(e.what()).find(
                  support::FaultSiteName(FaultSite::kCfgBuild)),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(support::fault::fired_count(), 1u);
}

TEST_F(FaultRegistryTest, SeededArmIsReproducibleAndCoversSites) {
  const FaultSite first = support::fault::ArmSeeded(0xDEADBEEF);
  support::fault::Disarm();
  EXPECT_EQ(support::fault::ArmSeeded(0xDEADBEEF), first);
  std::set<FaultSite> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    seen.insert(support::fault::ArmSeeded(seed));
  }
  EXPECT_GT(seen.size(), 1u) << "seeded arming is stuck on one site";
}

// ---------------------------------------------------------------------------
// ThreadPool exception capture (beyond the ParallelFor coverage in
// parallel_verify_test).

TEST(ThreadPoolTest, ThrowingJobIsRethrownAtWaitAndPoolStaysUsable) {
  support::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&ran, i] {
      if (i == 1) throw std::runtime_error("injected job failure");
      ran.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 3);  // the other jobs were not abandoned

  // The error was consumed: the pool keeps serving jobs and a clean
  // Wait() does not re-throw the stale exception.
  pool.Submit([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(ran.load(), 4);
}

// ---------------------------------------------------------------------------
// Fault matrix: every site degrades to a contained, phase-attributed
// kFailure report.

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { support::fault::Disarm(); }
};

TEST_F(FaultInjectionTest, EverySiteDegradesToContainedFailure) {
  // Pair 8 exercises the full pipeline: preprocessing allocates (VM
  // heap), P1 taints, the CFG builds, and P2/P3 solves.
  struct Case {
    FaultSite site;
    const char* expected_phase;
  };
  const Case cases[] = {
      {FaultSite::kAllocation, "preprocessing"},  // S run's first alloc
      {FaultSite::kTaintStep, "P1"},
      {FaultSite::kCfgBuild, "cfg"},
      {FaultSite::kSolverStep, "P2/P3"},
  };
  const corpus::Pair pair = corpus::BuildPair(8);
  for (const Case& c : cases) {
    SCOPED_TRACE(support::FaultSiteName(c.site));
    support::fault::Arm(c.site);
    const VerificationReport report = VerifyPair(pair);
    EXPECT_EQ(report.verdict, Verdict::kFailure);
    EXPECT_EQ(report.type, ResultType::kFailure);
    EXPECT_TRUE(report.exception_contained);
    EXPECT_FALSE(report.deadline_expired);
    EXPECT_EQ(report.failed_phase, c.expected_phase);
    EXPECT_NE(report.detail.find("contained exception"), std::string::npos)
        << report.detail;
    EXPECT_EQ(support::fault::fired_count(), 1u);
    support::fault::Disarm();
  }
}

TEST_F(FaultInjectionTest, StateForkFaultIsContainedInP23) {
  // Pair 8's symex may never two-way fork; this synthetic T guarantees
  // one (both branch directions reach ep).
  const vm::Program s = vm::AssembleParts({kShared, kSMain});
  const vm::Program t = vm::AssembleParts({kShared, kForkingTMain});
  const Bytes poc{0xF7};

  Octopocs clean(s, t, {"vuln"}, poc);
  ASSERT_FALSE(clean.Verify().exception_contained);

  support::fault::Arm(FaultSite::kStateFork);
  Octopocs faulted(s, t, {"vuln"}, poc);
  const VerificationReport report = faulted.Verify();
  EXPECT_EQ(report.verdict, Verdict::kFailure);
  EXPECT_TRUE(report.exception_contained);
  EXPECT_EQ(report.failed_phase, "P2/P3");
  EXPECT_EQ(support::fault::fired_count(), 1u);
}

TEST_F(FaultInjectionTest, OneShotFaultHitsExactlyOnePairSerially) {
  const std::vector<corpus::Pair> pairs = {
      corpus::BuildPair(1), corpus::BuildPair(2), corpus::BuildPair(3)};
  const PipelineOptions opts;
  const auto clean = VerifyCorpus(pairs, opts, 1);

  support::fault::Arm(FaultSite::kTaintStep);
  const auto faulted = VerifyCorpus(pairs, opts, 1);
  ASSERT_EQ(faulted.size(), 3u);

  // Serial order: the first pair's P1 polls the site first and absorbs
  // the fault; the later pairs are untouched.
  EXPECT_TRUE(faulted[0].exception_contained);
  EXPECT_EQ(faulted[0].failed_phase, "P1");
  ExpectSameOutcome(faulted[1], clean[1]);
  ExpectSameOutcome(faulted[2], clean[2]);
  EXPECT_EQ(support::fault::fired_count(), 1u);
  EXPECT_FALSE(support::fault::armed());
}

TEST_F(FaultInjectionTest, OneShotFaultHitsExactlyOnePairInParallel) {
  const std::vector<corpus::Pair> pairs = {
      corpus::BuildPair(1), corpus::BuildPair(2), corpus::BuildPair(3)};
  const PipelineOptions opts;
  const auto clean = VerifyCorpus(pairs, opts, 1);

  support::fault::Arm(FaultSite::kTaintStep);
  const auto faulted = VerifyCorpus(pairs, opts, 3);
  ASSERT_EQ(faulted.size(), 3u);

  // Which pair absorbs the fault is a race, but the atomic countdown
  // guarantees exactly one does — the rest must be byte-identical.
  std::size_t contained = 0;
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    if (faulted[i].exception_contained) {
      ++contained;
      EXPECT_EQ(faulted[i].verdict, Verdict::kFailure);
    } else {
      ExpectSameOutcome(faulted[i], clean[i]);
    }
  }
  EXPECT_EQ(contained, 1u);
  EXPECT_EQ(support::fault::fired_count(), 1u);
}

TEST_F(FaultInjectionTest, UnreachedSkipCountLeavesTheRunClean) {
  const corpus::Pair pair = corpus::BuildPair(1);
  const VerificationReport clean = VerifyPair(pair);

  support::fault::Arm(FaultSite::kTaintStep, 1'000'000'000'000ULL);
  const VerificationReport report = VerifyPair(pair);
  ExpectSameOutcome(report, clean);
  EXPECT_EQ(support::fault::fired_count(), 0u);
  EXPECT_TRUE(support::fault::armed());  // never consumed
}

// ---------------------------------------------------------------------------
// Pipeline deadlines: pathological workloads end by the clock, with the
// failing phase named, in bounded wall time.

TEST(PipelineDeadlineTest, TripsDuringPreprocessingOnAHangingProgram) {
  const vm::Program hang = vm::AssembleParts({kHangProgram});
  PipelineOptions opts;
  // Enough fuel that only the deadline can end the spin loop.
  opts.verify_exec.fuel = 2'000'000'000ULL;
  opts.deadline_ms = 25;

  const auto start = std::chrono::steady_clock::now();
  Octopocs pipeline(hang, hang, {"spin"}, Bytes{0x00}, opts);
  const VerificationReport report = pipeline.Verify();

  EXPECT_LT(ElapsedSeconds(start), 20.0) << "deadline did not bound the run";
  EXPECT_EQ(report.verdict, Verdict::kFailure);
  EXPECT_EQ(report.type, ResultType::kFailure);
  EXPECT_TRUE(report.deadline_expired);
  EXPECT_FALSE(report.exception_contained);
  EXPECT_EQ(report.failed_phase, "preprocessing");
}

TEST(PipelineDeadlineTest, PhaseDeadlineReapsThePathologicalSolve) {
  const corpus::Pair pair = HardSolverPair();
  PipelineOptions opts;
  // The step budget must not fire first — this test is about the clock.
  opts.symex.solver.max_steps = 4'000'000'000ULL;
  opts.p23_deadline_ms = 150;

  const auto start = std::chrono::steady_clock::now();
  const VerificationReport report = VerifyPair(pair, opts);

  EXPECT_LT(ElapsedSeconds(start), 30.0) << "deadline did not bound the run";
  EXPECT_EQ(report.verdict, Verdict::kFailure);
  EXPECT_TRUE(report.deadline_expired);
  // The p23 token covers CFG construction and P2/P3; on any sane
  // machine the tiny CFG finishes and the CSP search eats the budget.
  EXPECT_TRUE(report.failed_phase == "P2/P3" || report.failed_phase == "cfg")
      << report.failed_phase;
  EXPECT_NE(report.detail.find("deadline"), std::string::npos)
      << report.detail;
}

TEST(PipelineDeadlineTest, RaisedKillSwitchReapsTheRunImmediately) {
  const vm::Program hang = vm::AssembleParts({kHangProgram});
  PipelineOptions opts;
  opts.verify_exec.fuel = 2'000'000'000ULL;
  std::atomic<bool> kill{true};  // already raised — reap at first poll
  opts.cancel_flag = &kill;

  const auto start = std::chrono::steady_clock::now();
  Octopocs pipeline(hang, hang, {"spin"}, Bytes{0x00}, opts);
  const VerificationReport report = pipeline.Verify();

  EXPECT_LT(ElapsedSeconds(start), 20.0);
  EXPECT_EQ(report.verdict, Verdict::kFailure);
  EXPECT_TRUE(report.deadline_expired);
  EXPECT_EQ(report.failed_phase, "preprocessing");
}

TEST(PipelineDeadlineTest, CorpusWatchdogReapsOnlyTheStalledPair) {
  std::vector<corpus::Pair> pairs = {corpus::BuildPair(1), HardSolverPair(),
                                     corpus::BuildPair(2)};
  PipelineOptions opts;
  opts.symex.solver.max_steps = 4'000'000'000ULL;

  const auto clean0 = VerifyPair(pairs[0], opts);
  const auto clean2 = VerifyPair(pairs[2], opts);

  const auto start = std::chrono::steady_clock::now();
  const auto reports = VerifyCorpus(pairs, opts, 2, /*pair_deadline_ms=*/3000);
  ASSERT_EQ(reports.size(), 3u);

  EXPECT_LT(ElapsedSeconds(start), 120.0);
  EXPECT_EQ(reports[1].verdict, Verdict::kFailure);
  EXPECT_TRUE(reports[1].deadline_expired);
  // The stalled pair must not take its neighbours down with it.
  ExpectSameOutcome(reports[0], clean0);
  ExpectSameOutcome(reports[2], clean2);
}

// ---------------------------------------------------------------------------
// Graceful-degradation ladder.

TEST(DegradationTest, SolverBudgetRetryDoublesOnceAndIsRecorded) {
  const corpus::Pair pair = HardSolverPair();
  PipelineOptions opts;
  opts.symex.solver.max_steps = 2'000;  // hopeless even when doubled

  const VerificationReport plain = VerifyPair(pair, opts);
  EXPECT_EQ(plain.verdict, Verdict::kFailure);
  EXPECT_EQ(plain.failed_phase, "P2/P3");
  EXPECT_FALSE(plain.solver_budget_retried);
  EXPECT_FALSE(plain.deadline_expired);

  opts.solver_budget_retry = true;
  const VerificationReport retried = VerifyPair(pair, opts);
  EXPECT_EQ(retried.verdict, Verdict::kFailure);
  EXPECT_EQ(retried.failed_phase, "P2/P3");
  EXPECT_TRUE(retried.solver_budget_retried);
  EXPECT_FALSE(retried.exception_contained);
}

TEST(DegradationTest, StaticCfgFallbackIsOptInAndRecorded) {
  // Idx-15 models the angr CFG defect: by default its dynamic-CFG
  // failure must stay the paper's Failure row.
  const corpus::Pair pair = corpus::BuildPair(15);
  const VerificationReport plain = VerifyPair(pair);
  EXPECT_EQ(plain.verdict, Verdict::kFailure);
  EXPECT_EQ(plain.failed_phase, "cfg");
  EXPECT_FALSE(plain.cfg_static_fallback);

  PipelineOptions opts;
  opts.cfg_fallback_to_static = true;
  const VerificationReport degraded = VerifyPair(pair, opts);
  EXPECT_TRUE(degraded.cfg_static_fallback);
  EXPECT_FALSE(degraded.exception_contained);
  // The static CFG lacks the indirect-call edge, so the best-effort
  // verdict is weaker than the truth — but it IS a verdict, not a
  // tooling failure.
  EXPECT_NE(degraded.verdict, Verdict::kTriggered);
}

TEST(DegradationTest, AdaptiveThetaCeilingIsAttributedToP23) {
  const vm::Program s = vm::AssembleParts({kShared, kSMain});
  // The 40-ramp T from adaptive_theta_test, rebuilt inline to keep this
  // file self-contained.
  const vm::Program t = vm::AssembleParts({kShared, R"(
    func main()
      movi %one, 1
      alloc %buf, %one
      movi %i, 0
      movi %goal, 40
    ramp:
      cmpltu %more, %i, %goal
      br %more, body, go
    body:
      read %got, %buf, %one
      load.1 %c, %buf, 0
      movi %aa, 0xaa
      cmpeq %ok, %c, %aa
      assert %ok
      addi %i, %i, 1
      jmp ramp
    go:
      movi %zero, 0
      call %v, vuln(%zero)
      ret %v
  )"});

  PipelineOptions opts;
  opts.symex.theta = 2;
  opts.adaptive_theta = true;
  opts.adaptive_theta_max = 16;  // ceiling below the 40-ramp
  Octopocs capped(s, t, {"vuln"}, Bytes{0xF7}, opts);
  const VerificationReport report = capped.Verify();
  EXPECT_EQ(report.verdict, Verdict::kFailure);
  EXPECT_EQ(report.failed_phase, "P2/P3");
  EXPECT_FALSE(report.deadline_expired);
  EXPECT_FALSE(report.exception_contained);
}

// ---------------------------------------------------------------------------
// VerifyCorpus edge cases.

TEST(CorpusEdgeTest, EmptyPairListReturnsEmptyWithoutWorkerMachinery) {
  const std::vector<corpus::Pair> none;
  EXPECT_TRUE(VerifyCorpus(none, {}, 8).empty());
  // The watchdog path must cope with zero pairs too.
  EXPECT_TRUE(VerifyCorpus(none, {}, 8, /*pair_deadline_ms=*/50).empty());
}

TEST(CorpusEdgeTest, ZeroJobsRunsSeriallyLikeOne) {
  const std::vector<corpus::Pair> pairs = {corpus::BuildPair(1),
                                           corpus::BuildPair(2)};
  const auto zero = VerifyCorpus(pairs, {}, 0);
  const auto one = VerifyCorpus(pairs, {}, 1);
  ASSERT_EQ(zero.size(), 2u);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameOutcome(zero[i], one[i]);
  }
}

}  // namespace
}  // namespace octopocs::core
