// Property suite: taint soundness against ground-truth influence.
//
// Taint analysis is a *may-depend* over-approximation, so the testable
// direction is soundness: if flipping input byte k changes any output
// byte, that output byte's taint set must contain k (no false
// negatives). The programs are randomly generated straight-line
// dataflow kernels: read N input bytes, churn them through random ALU
// operations, store the register pool to an output buffer.
#include <gtest/gtest.h>

#include <string>

#include "support/rng.h"
#include "symex/solver.h"
#include "taint/taint_engine.h"
#include "vm/asm.h"

namespace octopocs::taint {
using octopocs::symex::ByteSolver;
namespace {

struct Kernel {
  vm::Program program;
  unsigned n_inputs;
  unsigned n_regs;
};

Kernel GenerateKernel(std::uint64_t seed) {
  Rng rng(seed);
  Kernel k;
  k.n_inputs = 2 + rng.Below(6);
  k.n_regs = 3 + rng.Below(4);
  const unsigned n_ops = 4 + rng.Below(12);

  std::string src = "  func main()\n";
  src += "    movi %n, " + std::to_string(k.n_inputs) + "\n";
  src += "    alloc %in, %n\n";
  src += "    read %got, %in, %n\n";
  src += "    movi %outn, " + std::to_string(k.n_regs * 8) + "\n";
  src += "    alloc %out, %outn\n";
  // Seed the register pool from input bytes (round-robin).
  for (unsigned r = 0; r < k.n_regs; ++r) {
    src += "    load.1 %v" + std::to_string(r) + ", %in, " +
           std::to_string(r % k.n_inputs) + "\n";
  }
  // Random ALU churn. Division is guarded by or-ing the divisor with 1.
  static const char* kOps[] = {"add", "sub", "mul", "and",
                               "or",  "xor", "shl", "shr"};
  for (unsigned i = 0; i < n_ops; ++i) {
    const std::string a = "%v" + std::to_string(rng.Below(k.n_regs));
    const std::string b = "%v" + std::to_string(rng.Below(k.n_regs));
    const std::string c = "%v" + std::to_string(rng.Below(k.n_regs));
    src += std::string("    ") + kOps[rng.Below(std::size(kOps))] + " " +
           a + ", " + b + ", " + c + "\n";
  }
  // Store the pool.
  for (unsigned r = 0; r < k.n_regs; ++r) {
    src += "    store.8 %v" + std::to_string(r) + ", %out, " +
           std::to_string(r * 8) + "\n";
  }
  src += "    ret %got\n";
  k.program = vm::Assemble(src);
  return k;
}

/// Concrete output snapshot: the n_regs * 8 bytes of the output buffer.
/// The output buffer is the second allocation; its base follows the
/// input buffer deterministically (AllocCursor).
Bytes RunKernel(const Kernel& k, const Bytes& input, std::uint64_t* out_base) {
  struct Snapshot : vm::ExecutionObserver {
    std::uint64_t out_base = 0;
    int allocs = 0;
    void OnInstr(vm::FuncId, vm::BlockId, std::size_t, const vm::Instr& ins,
                 std::uint64_t, std::uint64_t value) override {
      if (ins.op == vm::Op::kAlloc && ++allocs == 2) out_base = value;
    }
  } snap;
  struct MemDump : vm::ExecutionObserver {
    std::map<std::uint64_t, std::uint8_t> bytes;
    void OnInstr(vm::FuncId, vm::BlockId, std::size_t, const vm::Instr& ins,
                 std::uint64_t eff, std::uint64_t value) override {
      if (ins.op == vm::Op::kStore) {
        for (unsigned i = 0; i < ins.width; ++i) {
          bytes[eff + i] = static_cast<std::uint8_t>(value >> (8 * i));
        }
      }
    }
  } dump;
  vm::Interpreter interp(k.program, input);
  interp.AddObserver(&snap);
  interp.AddObserver(&dump);
  const auto r = interp.Run();
  EXPECT_EQ(r.trap, vm::TrapKind::kNone);
  *out_base = snap.out_base;
  Bytes out(k.n_regs * 8, 0);
  for (const auto& [addr, val] : dump.bytes) {
    if (addr >= snap.out_base && addr < snap.out_base + out.size()) {
      out[addr - snap.out_base] = val;
    }
  }
  return out;
}

class TaintSoundness : public ::testing::TestWithParam<int> {};

TEST_P(TaintSoundness, InfluenceIsSubsetOfTaint) {
  const Kernel k = GenerateKernel(31'000 + GetParam());
  Rng rng(99'000 + GetParam());
  const Bytes input = rng.RandomBytes(k.n_inputs);

  // Taint run.
  TaintEngine engine(k.program);
  vm::Interpreter interp(k.program, input);
  interp.AddObserver(&engine);
  ASSERT_EQ(interp.Run().trap, vm::TrapKind::kNone);

  // Baseline concrete output + output base address.
  std::uint64_t out_base = 0;
  const Bytes baseline = RunKernel(k, input, &out_base);
  ASSERT_NE(out_base, 0u);

  // Ground-truth influence: flip each input byte, diff the outputs.
  for (unsigned flip = 0; flip < k.n_inputs; ++flip) {
    Bytes mutated = input;
    mutated[flip] ^= 0xFF;
    std::uint64_t base2 = 0;
    const Bytes changed = RunKernel(k, mutated, &base2);
    ASSERT_EQ(base2, out_base);  // allocation layout is deterministic
    for (std::size_t byte = 0; byte < baseline.size(); ++byte) {
      if (baseline[byte] == changed[byte]) continue;
      // This output byte demonstrably depends on input `flip`: taint
      // soundness demands the label be present.
      const TaintSet t = engine.MemTaint(out_base + byte, 1);
      EXPECT_TRUE(t.Contains(flip))
          << "output byte " << byte << " changed when input " << flip
          << " flipped, but its taint is missing the label";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomKernels, TaintSoundness,
                         ::testing::Range(0, 25));

// Unsat completeness: directly contradictory byte equalities must be
// *proven* Unsat (never Unknown) regardless of surrounding noise.
class UnsatCompleteness : public ::testing::TestWithParam<int> {};

TEST_P(UnsatCompleteness, ContradictionIsProven) {
  Rng rng(55'000 + GetParam());
  ByteSolver solver;
  // Noise: a random satisfiable spread of constraints.
  const unsigned n_vars = 3 + rng.Below(6);
  for (unsigned i = 0; i < n_vars; ++i) {
    solver.Add(octopocs::symex::MakeBinOp(
        vm::Op::kCmpLtU, octopocs::symex::MakeInput(i),
        octopocs::symex::MakeConst(128 + rng.Below(128))));
  }
  // The contradiction.
  const std::uint32_t victim = static_cast<std::uint32_t>(rng.Below(n_vars));
  const std::uint8_t v = static_cast<std::uint8_t>(rng.Below(100));
  solver.Pin(victim, v);
  solver.Pin(victim, static_cast<std::uint8_t>(v + 1));
  EXPECT_EQ(solver.Solve().status, octopocs::symex::SolveStatus::kUnsat);
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, UnsatCompleteness,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace octopocs::taint
