// Solver memoization: a cached verdict must always equal what a fresh
// solve would return. Exact-key hits may return any verdict; model-reuse
// hits must be certificates (the returned model satisfies every
// constraint) and can never manufacture a kUnsat. Also covers the cache
// front door (SolverCache::Solve), UNSAT subsumption, and solve-context
// seeding — an independence-slicing tier lived beside these through
// PR 7; it never fired on the corpus and was retired, and its surviving
// assertions were folded in here.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "symex/expr.h"
#include "symex/solve_context.h"
#include "symex/solver.h"

namespace octopocs::symex {
namespace {

ExprRef In(std::uint32_t off) { return MakeInput(off); }

ExprRef InputEq(std::uint32_t off, std::uint64_t val) {
  return MakeBinOp(vm::Op::kCmpEq, MakeInput(off), MakeConst(val));
}

SolveResult FreshSolve(const std::vector<ExprRef>& constraints,
                       const SolverOptions& options = {}) {
  ByteSolver solver(options);
  for (const ExprRef& c : constraints) solver.Add(c);
  return solver.Solve();
}

// Byte-level model equality. A model maps only the offsets the producer
// assigned explicitly; absent offsets default to 0 everywhere a model is
// consumed (Eval, poc' emission), so two models are the same *assignment*
// when every constrained variable gets the same effective value — a
// certified-reuse model that omits zero bytes is byte-identical to a
// search model that spells them out.
testing::AssertionResult SameAssignment(const std::vector<ExprRef>& cs,
                                        const Model& a, const Model& b) {
  SortedSmallSet<std::uint32_t> vars;
  for (const ExprRef& c : cs) vars.UnionWith(FreeVars(c));
  for (const std::uint32_t v : vars) {
    const auto ai = a.find(v);
    const auto bi = b.find(v);
    const std::uint8_t av = ai == a.end() ? 0 : ai->second;
    const std::uint8_t bv = bi == b.end() ? 0 : bi->second;
    if (av != bv) {
      return testing::AssertionFailure()
             << "byte " << v << ": " << int(av) << " vs " << int(bv);
    }
  }
  return testing::AssertionSuccess();
}

bool Satisfies(const std::vector<ExprRef>& cs, const Model& model) {
  for (const ExprRef& c : cs) {
    if (Eval(c, model) == 0) return false;
  }
  return true;
}

TEST(SolverCacheTest, ExactKeyHitReturnsTheInsertedVerdict) {
  InternScope intern;
  SolverCache cache;
  const std::vector<ExprRef> constraints = {InputEq(0, 65), InputEq(1, 66)};

  EXPECT_EQ(cache.Lookup(constraints, {}, {}), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  const SolveResult fresh = FreshSolve(constraints);
  ASSERT_EQ(fresh.status, SolveStatus::kSat);
  cache.Insert(constraints, fresh);

  const SolveResult* hit = cache.Lookup(constraints, {}, {});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(hit->status, fresh.status);
  EXPECT_EQ(hit->model, fresh.model);
}

TEST(SolverCacheTest, ExactKeyHitMayReturnUnsat) {
  InternScope intern;
  SolverCache cache;
  // in[0] == 1 && in[0] == 2 is unsatisfiable.
  const std::vector<ExprRef> constraints = {InputEq(0, 1), InputEq(0, 2)};
  const SolveResult fresh = FreshSolve(constraints);
  ASSERT_EQ(fresh.status, SolveStatus::kUnsat);
  cache.Insert(constraints, fresh);

  const SolveResult* hit = cache.Lookup(constraints, {}, {});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->status, SolveStatus::kUnsat)
      << "an exact sequence match is provably the same query";
}

TEST(SolverCacheTest, ModelReuseHitEqualsFreshSolveAndCertifies) {
  InternScope intern;
  SolverCache cache;
  std::vector<ExprRef> prefix = {InputEq(0, 10), InputEq(1, 20)};
  cache.Insert(prefix, FreshSolve(prefix));

  // Extend the path the way the executor does: append one constraint the
  // cached model already satisfies (in[0] != 0).
  std::vector<ExprRef> extended = prefix;
  extended.push_back(
      MakeBinOp(vm::Op::kCmpNe, MakeInput(0), MakeConst(0)));

  const SolveResult* hit = cache.Lookup(extended, {}, {});
  ASSERT_NE(hit, nullptr) << "cached model satisfies the extension";
  EXPECT_EQ(hit->status, SolveStatus::kSat);
  for (const ExprRef& c : extended) {
    EXPECT_NE(Eval(c, hit->model), 0u)
        << "a reuse hit must certify every constraint";
  }
  EXPECT_EQ(hit->status, FreshSolve(extended).status);
}

TEST(SolverCacheTest, PinsOverrideTheCachedModel) {
  InternScope intern;
  SolverCache cache;
  std::vector<ExprRef> prefix = {
      MakeBinOp(vm::Op::kCmpNe, MakeInput(0), MakeConst(7))};
  SolveResult seed = FreshSolve(prefix);
  ASSERT_EQ(seed.status, SolveStatus::kSat);
  cache.Insert(prefix, std::move(seed));

  // Pin in[1] = 42 and require it in the constraints, the shape P3's
  // bunch placement produces. The cached model knows nothing about
  // in[1]; the pin overlay must supply it.
  std::vector<ExprRef> extended = prefix;
  extended.push_back(InputEq(1, 42));
  const Model pins = {{1, 42}};

  const SolveResult* hit = cache.Lookup(extended, pins, {});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->status, SolveStatus::kSat);
  EXPECT_EQ(hit->model.at(1), 42);
  EXPECT_EQ(hit->status, FreshSolve(extended).status);
}

TEST(SolverCacheTest, HintsFillFreshVariablesLikeAFreshSolveWould) {
  InternScope intern;
  SolverCache cache;
  std::vector<ExprRef> prefix = {InputEq(0, 3)};
  cache.Insert(prefix, FreshSolve(prefix));

  // The extension constrains a byte no cached model has seen; only the
  // hint (the original PoC's byte) satisfies it.
  std::vector<ExprRef> extended = prefix;
  extended.push_back(InputEq(5, 77));
  const Model hints = {{5, 77}};

  const SolveResult* hit = cache.Lookup(extended, {}, hints);
  ASSERT_NE(hit, nullptr) << "hint overlay should certify the extension";
  EXPECT_EQ(hit->model.at(5), 77);

  // The returned model covers only constrained variables — a hint for an
  // unconstrained byte must not appear (it would change poc' emission).
  const Model wide_hints = {{5, 77}, {200, 9}};
  const SolveResult* hit2 = cache.Lookup(extended, {}, wide_hints);
  ASSERT_NE(hit2, nullptr);
  EXPECT_EQ(hit2->model.count(200), 0u);
}

TEST(SolverCacheTest, UnsatisfiableExtensionMissesInsteadOfGuessing) {
  InternScope intern;
  SolverCache cache;
  std::vector<ExprRef> prefix = {InputEq(0, 10)};
  cache.Insert(prefix, FreshSolve(prefix));

  // The extension contradicts the prefix: no candidate can certify it,
  // so Lookup must miss — never report kUnsat from reuse.
  std::vector<ExprRef> extended = prefix;
  extended.push_back(InputEq(0, 11));
  EXPECT_EQ(cache.Lookup(extended, {}, {}), nullptr);
  EXPECT_EQ(FreshSolve(extended).status, SolveStatus::kUnsat);
}

TEST(SolverCacheTest, CachedVerdictsMatchFreshSolvesAcrossAWorkload) {
  InternScope intern;
  SolverCache cache;
  // Simulate an executor's query stream: a growing constraint sequence
  // with occasional pins, checking every cache answer against a fresh
  // solver on the same system.
  std::vector<ExprRef> constraints;
  Model pins;
  Model hints;
  for (std::uint32_t i = 0; i < 24; ++i) hints[i] = static_cast<uint8_t>(i);
  for (std::uint32_t i = 0; i < 24; ++i) {
    constraints.push_back(i % 3 == 0
                              ? InputEq(i, i)
                              : MakeBinOp(vm::Op::kCmpNe, MakeInput(i),
                                          MakeConst(255)));
    if (i % 5 == 0) pins[i] = static_cast<uint8_t>(i);

    SolveStatus got;
    if (const SolveResult* hit = cache.Lookup(constraints, pins, hints)) {
      got = hit->status;
      if (hit->status == SolveStatus::kSat) {
        for (const ExprRef& c : constraints) {
          ASSERT_NE(Eval(c, hit->model), 0u);
        }
      }
    } else {
      got = cache.Insert(constraints, FreshSolve(constraints)).status;
    }
    EXPECT_EQ(got, FreshSolve(constraints).status) << "query " << i;
  }
  EXPECT_GT(cache.stats().hits, 0u) << "the workload should produce hits";
}

// -- Cache front door ≡ monolithic solving --------------------------------
//
// The load-bearing property: every answer the SolverCache front door
// produces — whichever mechanism produced it — must equal what a fresh
// monolithic ByteSolver search over the same constraint sequence
// returns, byte for byte.

// Builds a random constraint system over a handful of variables with a
// mix of unary range checks and binary couplings, spread over several
// independent clusters (varied structure for the purity checks).
std::vector<ExprRef> RandomSystem(std::mt19937& rng, bool force_unsat) {
  std::vector<ExprRef> cs;
  const int clusters = 2 + static_cast<int>(rng() % 3);
  for (int c = 0; c < clusters; ++c) {
    const std::uint32_t base = static_cast<std::uint32_t>(c) * 4;
    const int k = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < k; ++i) {
      switch (rng() % 3) {
        case 0:
          cs.push_back(MakeBinOp(vm::Op::kCmpLtU, In(base + rng() % 2),
                                 MakeConst(1 + rng() % 200)));
          break;
        case 1:
          cs.push_back(MakeBinOp(vm::Op::kCmpEq,
                                 MakeBinOp(vm::Op::kAnd, In(base),
                                           MakeConst(0x0F)),
                                 MakeConst(rng() % 16)));
          break;
        default:
          cs.push_back(MakeBinOp(vm::Op::kCmpLeU, In(base),
                                 MakeBinOp(vm::Op::kAdd, In(base + 1),
                                           MakeConst(rng() % 5))));
          break;
      }
    }
  }
  if (force_unsat) {
    const std::uint32_t v = rng() % 8;
    cs.push_back(InputEq(v, 3));
    cs.push_back(InputEq(v, 4));
  }
  return cs;
}

TEST(CacheSolveTest, FrontDoorEqualsMonolithicOnRandomSystems) {
  std::mt19937 rng(1234);
  for (int round = 0; round < 60; ++round) {
    InternScope intern;
    const std::vector<ExprRef> cs = RandomSystem(rng, (round % 4) == 3);
    const SolveResult fresh = FreshSolve(cs);
    SolverCache cache;
    const SolveResult cached = cache.Solve(cs, {}, {}, nullptr);
    ASSERT_EQ(cached.status, fresh.status) << "round " << round;
    if (fresh.status == SolveStatus::kSat) {
      EXPECT_TRUE(SameAssignment(cs, cached.model, fresh.model))
          << "round " << round
          << ": the cache front door must pick byte-identical models";
    }
  }
}

TEST(CacheSolveTest, ResultIsPureAcrossCacheHistories) {
  // The same query through two caches with different histories must
  // agree: one cold, one warmed with each slice separately.
  InternScope intern;
  const std::vector<ExprRef> cs = {
      MakeBinOp(vm::Op::kCmpLtU, In(0), MakeConst(9)),
      InputEq(4, 200),
      MakeBinOp(vm::Op::kCmpLeU, In(8), In(9)),
  };
  SolverCache cold;
  const SolveResult a = cold.Solve(cs, {}, {}, nullptr);

  SolverCache warm;
  (void)warm.Solve({cs[0]}, {}, {}, nullptr);
  (void)warm.Solve({cs[1]}, {}, {}, nullptr);
  (void)warm.Solve({cs[2]}, {}, {}, nullptr);
  const SolveResult b = warm.Solve(cs, {}, {}, nullptr);

  EXPECT_EQ(a.status, b.status);
  EXPECT_TRUE(SameAssignment(cs, a.model, b.model));
  EXPECT_GE(warm.stats().hits, 1u)
      << "the warmed cache should answer the joint query from cache";
}

// -- UNSAT subsumption -----------------------------------------------------

TEST(SubsumptionTest, CachedUnsatSubsetProvesSupersetUnsat) {
  InternScope intern;
  SolverCache cache;
  const std::vector<ExprRef> core = {InputEq(2, 7), InputEq(2, 9)};
  ASSERT_EQ(cache.Solve(core, {}, {}, nullptr).status, SolveStatus::kUnsat);

  const std::vector<ExprRef> superset = {InputEq(0, 1), core[0],
                                         InputEq(5, 3), core[1]};
  const SolveResult r = cache.Solve(superset, {}, {}, nullptr);
  EXPECT_EQ(r.status, SolveStatus::kUnsat);
  EXPECT_EQ(cache.stats().subsumption_hits, 1u);
  // Soundness cross-check: a fresh search agrees.
  EXPECT_EQ(FreshSolve(superset).status, SolveStatus::kUnsat);
}

TEST(SubsumptionTest, NeverFlipsASatisfiableQuery) {
  // Warm a cache with many UNSAT systems, then stress it with random
  // *satisfiable* queries: none may come back kUnsat.
  std::mt19937 rng(99);
  InternScope intern;
  SolverCache cache;
  for (std::uint32_t v = 0; v < 6; ++v) {
    (void)cache.Solve({InputEq(v, 1), InputEq(v, 2)}, {}, {}, nullptr);
  }
  for (int round = 0; round < 40; ++round) {
    const std::vector<ExprRef> cs = RandomSystem(rng, /*force_unsat=*/false);
    const SolveResult fresh = FreshSolve(cs);
    const SolveResult cached = cache.Solve(cs, {}, {}, nullptr);
    ASSERT_EQ(cached.status, fresh.status)
        << "round " << round << ": subsumption flipped a verdict";
    if (fresh.status == SolveStatus::kSat) {
      // A warm cache may serve a *different* model than a cold search
      // (certified reuse), but whatever it serves must be a certificate.
      EXPECT_TRUE(Satisfies(cs, cached.model)) << "round " << round;
    }
  }
}

// -- SolveContext seeding --------------------------------------------------

TEST(SolveContextTest, SeededSearchIsBitIdenticalIncludingSteps) {
  std::mt19937 rng(4321);
  for (int round = 0; round < 40; ++round) {
    InternScope intern;
    const std::vector<ExprRef> cs = RandomSystem(rng, (round % 5) == 4);

    SolveContext ctx;
    for (const ExprRef& c : cs) ctx.Apply(c);

    SolverOptions with_ctx;
    with_ctx.context = &ctx;
    const SolveResult seeded = FreshSolve(cs, with_ctx);
    const SolveResult plain = FreshSolve(cs, {});

    ASSERT_EQ(seeded.status, plain.status) << "round " << round;
    EXPECT_EQ(seeded.model, plain.model) << "round " << round;
    EXPECT_EQ(seeded.steps, plain.steps)
        << "round " << round
        << ": context seeding may only skip prefilter evaluations, "
           "never change the search";
  }
}

TEST(SolveContextTest, WipeoutMarksKnownUnsat) {
  InternScope intern;
  SolveContext ctx;
  ctx.Apply(InputEq(3, 10));
  EXPECT_FALSE(ctx.known_unsat());
  ctx.Apply(InputEq(3, 11));
  EXPECT_TRUE(ctx.known_unsat());

  SolverCache cache;
  SolveContext query_ctx = ctx;
  const SolveResult r =
      cache.Solve({InputEq(3, 10), InputEq(3, 11)}, {}, {}, &query_ctx);
  EXPECT_EQ(r.status, SolveStatus::kUnsat);
  EXPECT_EQ(cache.stats().subsumption_hits, 1u);
}

// -- Per-mechanism hit counters --------------------------------------------

TEST(CacheCountersTest, EachMechanismBumpsItsOwnCounter) {
  InternScope intern;
  SolverCache cache;
  const ExprRef a = InputEq(0, 5);
  const ExprRef b = InputEq(1, 7);

  // Fresh solve: miss.
  ASSERT_EQ(cache.Solve({a}, {}, {}, nullptr).status, SolveStatus::kSat);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // Same sequence again: exact hit.
  ASSERT_EQ(cache.Solve({a}, {}, {}, nullptr).status, SolveStatus::kSat);
  EXPECT_EQ(cache.stats().exact_hits, 1u);

  // A new joint query is a fresh search (the slicing tier that once
  // stitched {a} and {b} answers together is retired), but it caches
  // the joint model {0:5, 1:7}...
  ASSERT_EQ(cache.Solve({a, b}, {}, {}, nullptr).status, SolveStatus::kSat);
  EXPECT_EQ(cache.stats().misses, 2u);

  // ...which certifies this relaxation without a search: model reuse.
  const std::vector<ExprRef> relaxed = {
      MakeBinOp(vm::Op::kCmpLeU, In(0), MakeConst(5)),
      MakeBinOp(vm::Op::kCmpLeU, In(1), MakeConst(7)),
  };
  const SolveResult reused = cache.Solve(relaxed, {}, {}, nullptr);
  ASSERT_EQ(reused.status, SolveStatus::kSat);
  EXPECT_EQ(reused.steps, 0u) << "cache hits must report zero steps";
  EXPECT_TRUE(Satisfies(relaxed, reused.model));
  const SolverCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 4u) << "hits + misses == counted queries";
  EXPECT_EQ(s.hits, s.exact_hits + s.model_reuse_hits + s.subsumption_hits)
      << "per-mechanism counters partition the hit total";
  EXPECT_GE(s.model_reuse_hits, 1u)
      << "the relaxed query must be served by certified model reuse";

  // UNSAT core, then a superset: subsumption.
  ASSERT_EQ(cache.Solve({InputEq(2, 1), InputEq(2, 2)}, {}, {}, nullptr)
                .status,
            SolveStatus::kUnsat);
  ASSERT_EQ(
      cache.Solve({a, InputEq(2, 1), InputEq(2, 2)}, {}, {}, nullptr).status,
      SolveStatus::kUnsat);
  EXPECT_EQ(cache.stats().subsumption_hits, 1u);
}

}  // namespace
}  // namespace octopocs::symex
