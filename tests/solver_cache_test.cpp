// Solver memoization: a cached verdict must always equal what a fresh
// solve would return. Exact-key hits may return any verdict; model-reuse
// hits must be certificates (the returned model satisfies every
// constraint) and can never manufacture a kUnsat.
#include <gtest/gtest.h>

#include <vector>

#include "symex/expr.h"
#include "symex/solver.h"

namespace octopocs::symex {
namespace {

ExprRef InputEq(std::uint32_t off, std::uint64_t val) {
  return MakeBinOp(vm::Op::kCmpEq, MakeInput(off), MakeConst(val));
}

SolveResult FreshSolve(const std::vector<ExprRef>& constraints,
                       const SolverOptions& options = {}) {
  ByteSolver solver(options);
  for (const ExprRef& c : constraints) solver.Add(c);
  return solver.Solve();
}

TEST(SolverCacheTest, ExactKeyHitReturnsTheInsertedVerdict) {
  InternScope intern;
  SolverCache cache;
  const std::vector<ExprRef> constraints = {InputEq(0, 65), InputEq(1, 66)};

  EXPECT_EQ(cache.Lookup(constraints, {}, {}), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  const SolveResult fresh = FreshSolve(constraints);
  ASSERT_EQ(fresh.status, SolveStatus::kSat);
  cache.Insert(constraints, fresh);

  const SolveResult* hit = cache.Lookup(constraints, {}, {});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(hit->status, fresh.status);
  EXPECT_EQ(hit->model, fresh.model);
}

TEST(SolverCacheTest, ExactKeyHitMayReturnUnsat) {
  InternScope intern;
  SolverCache cache;
  // in[0] == 1 && in[0] == 2 is unsatisfiable.
  const std::vector<ExprRef> constraints = {InputEq(0, 1), InputEq(0, 2)};
  const SolveResult fresh = FreshSolve(constraints);
  ASSERT_EQ(fresh.status, SolveStatus::kUnsat);
  cache.Insert(constraints, fresh);

  const SolveResult* hit = cache.Lookup(constraints, {}, {});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->status, SolveStatus::kUnsat)
      << "an exact sequence match is provably the same query";
}

TEST(SolverCacheTest, ModelReuseHitEqualsFreshSolveAndCertifies) {
  InternScope intern;
  SolverCache cache;
  std::vector<ExprRef> prefix = {InputEq(0, 10), InputEq(1, 20)};
  cache.Insert(prefix, FreshSolve(prefix));

  // Extend the path the way the executor does: append one constraint the
  // cached model already satisfies (in[0] != 0).
  std::vector<ExprRef> extended = prefix;
  extended.push_back(
      MakeBinOp(vm::Op::kCmpNe, MakeInput(0), MakeConst(0)));

  const SolveResult* hit = cache.Lookup(extended, {}, {});
  ASSERT_NE(hit, nullptr) << "cached model satisfies the extension";
  EXPECT_EQ(hit->status, SolveStatus::kSat);
  for (const ExprRef& c : extended) {
    EXPECT_NE(Eval(c, hit->model), 0u)
        << "a reuse hit must certify every constraint";
  }
  EXPECT_EQ(hit->status, FreshSolve(extended).status);
}

TEST(SolverCacheTest, PinsOverrideTheCachedModel) {
  InternScope intern;
  SolverCache cache;
  std::vector<ExprRef> prefix = {
      MakeBinOp(vm::Op::kCmpNe, MakeInput(0), MakeConst(7))};
  SolveResult seed = FreshSolve(prefix);
  ASSERT_EQ(seed.status, SolveStatus::kSat);
  cache.Insert(prefix, std::move(seed));

  // Pin in[1] = 42 and require it in the constraints, the shape P3's
  // bunch placement produces. The cached model knows nothing about
  // in[1]; the pin overlay must supply it.
  std::vector<ExprRef> extended = prefix;
  extended.push_back(InputEq(1, 42));
  const Model pins = {{1, 42}};

  const SolveResult* hit = cache.Lookup(extended, pins, {});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->status, SolveStatus::kSat);
  EXPECT_EQ(hit->model.at(1), 42);
  EXPECT_EQ(hit->status, FreshSolve(extended).status);
}

TEST(SolverCacheTest, HintsFillFreshVariablesLikeAFreshSolveWould) {
  InternScope intern;
  SolverCache cache;
  std::vector<ExprRef> prefix = {InputEq(0, 3)};
  cache.Insert(prefix, FreshSolve(prefix));

  // The extension constrains a byte no cached model has seen; only the
  // hint (the original PoC's byte) satisfies it.
  std::vector<ExprRef> extended = prefix;
  extended.push_back(InputEq(5, 77));
  const Model hints = {{5, 77}};

  const SolveResult* hit = cache.Lookup(extended, {}, hints);
  ASSERT_NE(hit, nullptr) << "hint overlay should certify the extension";
  EXPECT_EQ(hit->model.at(5), 77);

  // The returned model covers only constrained variables — a hint for an
  // unconstrained byte must not appear (it would change poc' emission).
  const Model wide_hints = {{5, 77}, {200, 9}};
  const SolveResult* hit2 = cache.Lookup(extended, {}, wide_hints);
  ASSERT_NE(hit2, nullptr);
  EXPECT_EQ(hit2->model.count(200), 0u);
}

TEST(SolverCacheTest, UnsatisfiableExtensionMissesInsteadOfGuessing) {
  InternScope intern;
  SolverCache cache;
  std::vector<ExprRef> prefix = {InputEq(0, 10)};
  cache.Insert(prefix, FreshSolve(prefix));

  // The extension contradicts the prefix: no candidate can certify it,
  // so Lookup must miss — never report kUnsat from reuse.
  std::vector<ExprRef> extended = prefix;
  extended.push_back(InputEq(0, 11));
  EXPECT_EQ(cache.Lookup(extended, {}, {}), nullptr);
  EXPECT_EQ(FreshSolve(extended).status, SolveStatus::kUnsat);
}

TEST(SolverCacheTest, CachedVerdictsMatchFreshSolvesAcrossAWorkload) {
  InternScope intern;
  SolverCache cache;
  // Simulate an executor's query stream: a growing constraint sequence
  // with occasional pins, checking every cache answer against a fresh
  // solver on the same system.
  std::vector<ExprRef> constraints;
  Model pins;
  Model hints;
  for (std::uint32_t i = 0; i < 24; ++i) hints[i] = static_cast<uint8_t>(i);
  for (std::uint32_t i = 0; i < 24; ++i) {
    constraints.push_back(i % 3 == 0
                              ? InputEq(i, i)
                              : MakeBinOp(vm::Op::kCmpNe, MakeInput(i),
                                          MakeConst(255)));
    if (i % 5 == 0) pins[i] = static_cast<uint8_t>(i);

    SolveStatus got;
    if (const SolveResult* hit = cache.Lookup(constraints, pins, hints)) {
      got = hit->status;
      if (hit->status == SolveStatus::kSat) {
        for (const ExprRef& c : constraints) {
          ASSERT_NE(Eval(c, hit->model), 0u);
        }
      }
    } else {
      got = cache.Insert(constraints, FreshSolve(constraints)).status;
    }
    EXPECT_EQ(got, FreshSolve(constraints).status) << "query " << i;
  }
  EXPECT_GT(cache.stats().hits, 0u) << "the workload should produce hits";
}

}  // namespace
}  // namespace octopocs::symex
