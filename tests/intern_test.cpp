// Expression interning (scoped hash-consing): structurally-equal nodes
// built under an InternScope must be pointer-identical, folding
// identities must fire across independently built subtrees, and nodes
// must outlive the scope that created them.
#include <gtest/gtest.h>

#include "symex/expr.h"

namespace octopocs::symex {
namespace {

ExprRef BuildSum() {
  return MakeBinOp(vm::Op::kAdd, MakeInput(3), MakeConst(5));
}

TEST(InternTest, NoScopeMeansNoDedup) {
  const ExprRef a = BuildSum();
  const ExprRef b = BuildSum();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(Eval(a, {{3, 2}}), Eval(b, {{3, 2}}));
}

TEST(InternTest, ScopeDedupesStructurallyEqualNodes) {
  InternScope scope;
  const ExprRef a = BuildSum();
  const ExprRef b = BuildSum();
  EXPECT_EQ(a.get(), b.get()) << "same structure must intern to one node";

  const InternScope::Stats stats = scope.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.nodes, 0u);

  // A different structure is a different node.
  const ExprRef c = MakeBinOp(vm::Op::kAdd, MakeInput(3), MakeConst(6));
  EXPECT_NE(a.get(), c.get());
}

TEST(InternTest, PointerEqualityEnablesFoldingAcrossCopies) {
  InternScope scope;
  // x - x folds to 0 only when both operands are recognized as the same
  // node; interning makes that true for independently built subtrees.
  const ExprRef diff = MakeBinOp(vm::Op::kSub, BuildSum(), BuildSum());
  ASSERT_TRUE(diff->IsConst());
  EXPECT_EQ(diff->value, 0u);

  const ExprRef eq = MakeBinOp(vm::Op::kCmpEq, BuildSum(), BuildSum());
  ASSERT_TRUE(eq->IsConst());
  EXPECT_EQ(eq->value, 1u);
}

TEST(InternTest, NodesOutliveTheScope) {
  ExprRef survivor;
  {
    InternScope scope;
    survivor = BuildSum();
  }
  // The table dropped its strong refs; the node lives on through ours.
  EXPECT_EQ(Eval(survivor, {{3, 40}}), 45u);
  // And constructions outside any scope no longer dedupe against it.
  EXPECT_NE(survivor.get(), BuildSum().get());
}

TEST(InternTest, NestedScopesRestoreTheOuterTable) {
  InternScope outer;
  const ExprRef a = BuildSum();
  {
    InternScope inner;  // fresh table: no sharing with the outer scope
    const ExprRef b = BuildSum();
    EXPECT_NE(a.get(), b.get());
  }
  const ExprRef c = BuildSum();  // outer scope active again
  EXPECT_EQ(a.get(), c.get());
}

TEST(InternTest, CollectInputsLinearOnSharedDag) {
  InternScope scope;
  // A deep DAG with heavy sharing: without a visited set this would be
  // exponential. 64 levels of x = x + x over one input.
  ExprRef e = MakeInput(0);
  for (int i = 0; i < 64; ++i) e = MakeBinOp(vm::Op::kAdd, e, e);
  SortedSmallSet<std::uint32_t> inputs;
  CollectInputs(e, inputs);
  ASSERT_EQ(inputs.items().size(), 1u);
  EXPECT_EQ(inputs.items().front(), 0u);
}

}  // namespace
}  // namespace octopocs::symex
