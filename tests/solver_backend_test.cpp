// SolverBackend differential suite: the propagation core and the raced
// portfolio against the legacy backtracker (the A/B oracle).
//
// The contract under test is *answer identity*: for any preprocessed
// constraint system, every backend returns the same status, and on kSat
// the same effective byte assignment — the backends share one decision
// procedure (variable order, value order, filtering strength) and
// differ only in how fast they walk it. kUnsat must agree exactly
// (Type-III verdicts ride on its completeness). Under tiny step
// budgets the backends may disagree about *whether* they finished, but
// never about a definitive answer.
//
// The nogood cases pin the soundness argument from DESIGN.md §15: a
// recorded nogood only ever prunes provably model-free subtrees, so a
// store warmed by arbitrary earlier queries can never change a later
// query's status or first model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "symex/expr.h"
#include "symex/solver.h"

namespace octopocs::symex {
namespace {

ExprRef In(std::uint32_t off) { return MakeInput(off); }

ExprRef InputEq(std::uint32_t off, std::uint64_t val) {
  return MakeBinOp(vm::Op::kCmpEq, In(off), MakeConst(val));
}

/// Random expression tree over a small variable window. Mixes arithmetic,
/// bitwise ops, comparisons, negation, and byte extraction so the
/// compiled-program evaluator in the propagate core is exercised on every
/// node kind the tree-walking Eval handles.
ExprRef RandomExpr(std::mt19937& rng, int depth, std::uint32_t num_vars) {
  if (depth <= 0 || rng() % 4 == 0) {
    return rng() % 2 == 0 ? In(rng() % num_vars)
                          : MakeConst(rng() % 256);
  }
  switch (rng() % 12) {
    case 0:
      return MakeNot(RandomExpr(rng, depth - 1, num_vars));
    case 1:
      return MakeExtract(RandomExpr(rng, depth - 1, num_vars),
                         static_cast<std::uint8_t>(rng() % 2));
    default: {
      static const vm::Op kOps[] = {
          vm::Op::kAdd,   vm::Op::kSub,   vm::Op::kMul,   vm::Op::kAnd,
          vm::Op::kOr,    vm::Op::kXor,   vm::Op::kCmpEq, vm::Op::kCmpNe,
          vm::Op::kCmpLtU, vm::Op::kCmpLeU,
      };
      return MakeBinOp(kOps[rng() % (sizeof(kOps) / sizeof(kOps[0]))],
                       RandomExpr(rng, depth - 1, num_vars),
                       RandomExpr(rng, depth - 1, num_vars));
    }
  }
}

/// A random system: mostly comparison constraints (so a decent fraction
/// is satisfiable but not trivially), with optional forced-UNSAT pairs.
std::vector<ExprRef> RandomSystem(std::mt19937& rng, bool force_unsat) {
  const std::uint32_t num_vars = 2 + rng() % 6;
  std::vector<ExprRef> cs;
  const int n = 1 + static_cast<int>(rng() % 5);
  for (int i = 0; i < n; ++i) {
    cs.push_back(RandomExpr(rng, 1 + static_cast<int>(rng() % 3), num_vars));
  }
  if (force_unsat) {
    const std::uint32_t v = rng() % num_vars;
    cs.push_back(InputEq(v, 3));
    cs.push_back(InputEq(v, 4));
  }
  return cs;
}

/// Random PoC-byte value-ordering hints for a subset of the window.
Model RandomHints(std::mt19937& rng) {
  Model hints;
  const int n = static_cast<int>(rng() % 4);
  for (int i = 0; i < n; ++i) {
    hints[rng() % 8] = static_cast<std::uint8_t>(rng() % 256);
  }
  return hints;
}

SolveResult SolveUnder(const std::vector<ExprRef>& cs, SolverBackendKind kind,
                       const SolverOptions& base = {}) {
  SolverOptions options = base;
  options.backend = kind;
  ByteSolver solver(options);
  for (const ExprRef& c : cs) solver.Add(c);
  return solver.Solve();
}

/// Effective-assignment equality over the constrained variables (absent
/// model entries read as 0 everywhere a model is consumed).
testing::AssertionResult SameAssignment(const std::vector<ExprRef>& cs,
                                        const Model& a, const Model& b) {
  SortedSmallSet<std::uint32_t> vars;
  for (const ExprRef& c : cs) vars.UnionWith(FreeVars(c));
  for (const std::uint32_t v : vars) {
    const auto ai = a.find(v);
    const auto bi = b.find(v);
    const std::uint8_t av = ai == a.end() ? 0 : ai->second;
    const std::uint8_t bv = bi == b.end() ? 0 : bi->second;
    if (av != bv) {
      return testing::AssertionFailure()
             << "byte " << v << ": " << int(av) << " vs " << int(bv);
    }
  }
  return testing::AssertionSuccess();
}

bool Satisfies(const std::vector<ExprRef>& cs, const Model& model) {
  for (const ExprRef& c : cs) {
    if (Eval(c, model) == 0) return false;
  }
  return true;
}

bool Definitive(SolveStatus s) {
  return s == SolveStatus::kSat || s == SolveStatus::kUnsat;
}

// -- Differential fuzz: propagate vs backtrack ------------------------------

TEST(BackendDifferential, FiveHundredRandomSystemsAgreeExactly) {
  std::mt19937 rng(20260807);
  int sat = 0, unsat = 0;
  for (int round = 0; round < 520; ++round) {
    InternScope intern;
    const std::vector<ExprRef> cs = RandomSystem(rng, (round % 5) == 4);
    SolverOptions base;
    base.hints = RandomHints(rng);
    const SolveResult oracle = SolveUnder(cs, SolverBackendKind::kBacktrack,
                                          base);
    const SolveResult fast = SolveUnder(cs, SolverBackendKind::kPropagate,
                                        base);
    ASSERT_EQ(fast.status, oracle.status) << "round " << round;
    if (oracle.status == SolveStatus::kSat) {
      ++sat;
      EXPECT_TRUE(SameAssignment(cs, fast.model, oracle.model))
          << "round " << round << ": first models must be byte-identical";
      EXPECT_TRUE(Satisfies(cs, fast.model)) << "round " << round;
    } else if (oracle.status == SolveStatus::kUnsat) {
      ++unsat;
    }
  }
  // The generator must actually exercise both verdicts, or the
  // differential proves nothing.
  EXPECT_GE(sat, 100);
  EXPECT_GE(unsat, 50);
}

TEST(BackendDifferential, NogoodWarmedPropagateStillAgrees) {
  // Same differential, but one NogoodStore survives across all queries —
  // the P3 prefix-re-solve lifetime. Nogoods recorded by earlier systems
  // whose dep sets happen to apply to later ones may prune subtrees, and
  // must never change an answer.
  std::mt19937 rng(777);
  InternScope intern;  // one scope: node addresses stay comparable
  NogoodStore store;
  for (int round = 0; round < 150; ++round) {
    const std::vector<ExprRef> cs = RandomSystem(rng, (round % 4) == 3);
    SolverOptions warm;
    warm.nogoods = &store;
    const SolveResult fast = SolveUnder(cs, SolverBackendKind::kPropagate,
                                        warm);
    const SolveResult oracle =
        SolveUnder(cs, SolverBackendKind::kBacktrack);
    ASSERT_EQ(fast.status, oracle.status) << "round " << round;
    if (oracle.status == SolveStatus::kSat) {
      EXPECT_TRUE(SameAssignment(cs, fast.model, oracle.model))
          << "round " << round;
    }
  }
}

TEST(BackendDifferential, GrowingPrefixReSolvesAgree) {
  // The exact P3 shape: a path's constraint prefix grows at each ep
  // encounter and is re-solved each time, with the nogood store carried
  // across. Every rung must match a cold backtrack solve of that rung.
  std::mt19937 rng(31337);
  for (int round = 0; round < 60; ++round) {
    InternScope intern;
    NogoodStore store;
    std::vector<ExprRef> prefix;
    for (int stage = 0; stage < 4; ++stage) {
      const std::vector<ExprRef> extension =
          RandomSystem(rng, /*force_unsat=*/stage == 3 && (round % 3) == 0);
      prefix.insert(prefix.end(), extension.begin(), extension.end());
      SolverOptions warm;
      warm.nogoods = &store;
      const SolveResult fast =
          SolveUnder(prefix, SolverBackendKind::kPropagate, warm);
      const SolveResult oracle =
          SolveUnder(prefix, SolverBackendKind::kBacktrack);
      // Nogood pruning may let the propagate core finish a rung the
      // backtracker's step budget cannot (that speedup is the point);
      // what it may never do is contradict a definitive oracle answer
      // or produce an uncertified model.
      if (Definitive(oracle.status) && Definitive(fast.status)) {
        ASSERT_EQ(fast.status, oracle.status)
            << "round " << round << " stage " << stage;
        if (oracle.status == SolveStatus::kSat) {
          EXPECT_TRUE(SameAssignment(prefix, fast.model, oracle.model))
              << "round " << round << " stage " << stage;
        }
      }
      if (fast.status == SolveStatus::kSat) {
        EXPECT_TRUE(Satisfies(prefix, fast.model))
            << "round " << round << " stage " << stage;
      }
      if (oracle.status == SolveStatus::kUnsat ||
          fast.status == SolveStatus::kUnsat) {
        break;
      }
    }
  }
}

TEST(BackendDifferential, BudgetEdgesNeverContradict) {
  // Under tiny step budgets a backend may run out (kUnknown) where the
  // other finishes — that asymmetry is allowed. What is not allowed is
  // two *definitive* answers that disagree, or a model that fails its
  // own constraints.
  std::mt19937 rng(5150);
  for (int round = 0; round < 200; ++round) {
    InternScope intern;
    const std::vector<ExprRef> cs = RandomSystem(rng, (round % 4) == 3);
    SolverOptions tight;
    tight.max_steps = rng() % 24;
    const SolveResult a = SolveUnder(cs, SolverBackendKind::kBacktrack,
                                     tight);
    const SolveResult b = SolveUnder(cs, SolverBackendKind::kPropagate,
                                     tight);
    if (Definitive(a.status) && Definitive(b.status)) {
      ASSERT_EQ(a.status, b.status) << "round " << round;
      if (a.status == SolveStatus::kSat) {
        EXPECT_TRUE(SameAssignment(cs, a.model, b.model)) << "round "
                                                          << round;
      }
    }
    if (b.status == SolveStatus::kSat) {
      EXPECT_TRUE(Satisfies(cs, b.model)) << "round " << round;
    }
  }
}

// -- Portfolio ---------------------------------------------------------------

TEST(Portfolio, MatchesTheOracleOnRandomSystems) {
  std::mt19937 rng(424242);
  for (int round = 0; round < 60; ++round) {
    InternScope intern;
    const std::vector<ExprRef> cs = RandomSystem(rng, (round % 3) == 2);
    const SolveResult oracle = SolveUnder(cs, SolverBackendKind::kBacktrack);
    const SolveResult raced = SolveUnder(cs, SolverBackendKind::kPortfolio);
    ASSERT_EQ(raced.status, oracle.status) << "round " << round;
    if (oracle.status == SolveStatus::kSat) {
      EXPECT_TRUE(SameAssignment(cs, raced.model, oracle.model))
          << "round " << round;
    }
  }
}

TEST(Portfolio, DefinitiveOnBothSatAndUnsat) {
  InternScope intern;
  const SolveResult sat =
      SolveUnder({InputEq(0, 7)}, SolverBackendKind::kPortfolio);
  EXPECT_EQ(sat.status, SolveStatus::kSat);
  EXPECT_EQ(Eval(In(0), sat.model), 7u);

  const SolveResult unsat = SolveUnder({InputEq(1, 3), InputEq(1, 4)},
                                       SolverBackendKind::kPortfolio);
  EXPECT_EQ(unsat.status, SolveStatus::kUnsat);
}

// -- Backend plumbing --------------------------------------------------------

TEST(BackendPlumbing, ParseAndNameRoundTrip) {
  for (const SolverBackendKind kind :
       {SolverBackendKind::kBacktrack, SolverBackendKind::kPropagate,
        SolverBackendKind::kPortfolio}) {
    const auto parsed = ParseSolverBackend(SolverBackendName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
    EXPECT_STREQ(GetSolverBackend(kind).name(), SolverBackendName(kind));
  }
  EXPECT_FALSE(ParseSolverBackend("z3").has_value());
  EXPECT_FALSE(ParseSolverBackend("").has_value());
}

// -- Nogood store semantics --------------------------------------------------

TEST(NogoodStore, DropsDuplicatesAndWeakerEntries) {
  InternScope intern;
  const ExprRef c = InputEq(0, 1);
  const ExprRef d = InputEq(1, 2);
  NogoodStore store;
  store.Record({{0, 1}}, {c.get()});
  EXPECT_EQ(store.size(), 1u);
  // Same literals, dependency superset: subsumed by the stored entry.
  std::vector<const Expr*> wider = {c.get(), d.get()};
  std::sort(wider.begin(), wider.end());
  store.Record({{0, 1}}, wider);
  EXPECT_EQ(store.size(), 1u);
  // Empty literal sets carry no pruning information and are refused.
  store.Record({}, {c.get()});
  EXPECT_EQ(store.size(), 1u);
}

TEST(NogoodStore, StaysWithinItsCap) {
  InternScope intern;
  std::vector<ExprRef> keep_alive;
  NogoodStore store;
  for (std::uint32_t i = 0; i < NogoodStore::kMaxNogoods + 64; ++i) {
    keep_alive.push_back(InputEq(i % 64, i % 256));
    store.Record({{i % 64, static_cast<std::uint8_t>(i % 256)},
                  {64 + i % 8, static_cast<std::uint8_t>(i % 7)}},
                 {keep_alive.back().get()});
  }
  EXPECT_LE(store.size(), NogoodStore::kMaxNogoods);
}

TEST(NogoodSoundness, InapplicableNogoodsNeverFire) {
  // Warm the store on an UNSAT system over var 0, then solve a
  // *satisfiable* system whose only model assigns var 0 a value the
  // warmed nogoods mention. The dep-subset applicability test must keep
  // those nogoods inert — their proof talks about constraints this query
  // does not contain.
  InternScope intern;
  NogoodStore store;
  SolverOptions warm;
  warm.nogoods = &store;
  const SolveResult seed = SolveUnder(
      {MakeBinOp(vm::Op::kCmpLtU, In(0), MakeConst(4)), InputEq(0, 9)},
      SolverBackendKind::kPropagate, warm);
  ASSERT_EQ(seed.status, SolveStatus::kUnsat);

  const std::vector<ExprRef> sat_query = {InputEq(0, 2)};
  const SolveResult r =
      SolveUnder(sat_query, SolverBackendKind::kPropagate, warm);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(Eval(In(0), r.model), 2u);
}

TEST(NogoodSoundness, ExhaustiveSweepOverSmallSystems) {
  // Brute-force ground truth on two-variable systems restricted to tiny
  // domains: enumerate all 256^2 assignments... too slow; instead
  // restrict with unary range constraints so the true model set is
  // enumerable, and check the warmed propagate core finds exactly the
  // first model (lowest var, then lowest value, hints absent) the
  // oracle's ordering defines.
  InternScope intern;
  NogoodStore store;
  SolverOptions warm;
  warm.nogoods = &store;
  std::mt19937 rng(99);
  for (int round = 0; round < 80; ++round) {
    const std::uint8_t lo0 = rng() % 8, hi0 = lo0 + 1 + rng() % 8;
    const std::uint8_t lo1 = rng() % 8, hi1 = lo1 + 1 + rng() % 8;
    const std::vector<ExprRef> cs = {
        MakeBinOp(vm::Op::kCmpLeU, MakeConst(lo0), In(0)),
        MakeBinOp(vm::Op::kCmpLtU, In(0), MakeConst(hi0)),
        MakeBinOp(vm::Op::kCmpLeU, MakeConst(lo1), In(1)),
        MakeBinOp(vm::Op::kCmpLtU, In(1), MakeConst(hi1)),
        MakeBinOp(vm::Op::kCmpNe, MakeBinOp(vm::Op::kAdd, In(0), In(1)),
                  MakeConst(lo0 + lo1)),
    };
    // Ground truth: first (v0, v1) in lexicographic order with
    // v0 + v1 != lo0 + lo1.
    Model expect;
    bool found = false;
    for (std::uint32_t v0 = lo0; v0 < hi0 && !found; ++v0) {
      for (std::uint32_t v1 = lo1; v1 < hi1 && !found; ++v1) {
        if (v0 + v1 != static_cast<std::uint32_t>(lo0 + lo1)) {
          expect[0] = static_cast<std::uint8_t>(v0);
          expect[1] = static_cast<std::uint8_t>(v1);
          found = true;
        }
      }
    }
    const SolveResult r = SolveUnder(cs, SolverBackendKind::kPropagate, warm);
    if (!found) {
      EXPECT_EQ(r.status, SolveStatus::kUnsat) << "round " << round;
      continue;
    }
    ASSERT_EQ(r.status, SolveStatus::kSat) << "round " << round;
    // The search branches on the smaller filtered domain first, so the
    // lexicographic ground truth only binds when var 0's domain is the
    // tighter one (ties break toward the lower offset).
    if (hi0 - lo0 <= hi1 - lo1) {
      EXPECT_TRUE(SameAssignment(cs, r.model, expect)) << "round " << round;
    } else {
      EXPECT_TRUE(Satisfies(cs, r.model)) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace octopocs::symex
