// Fuzzing baselines: mutation engine invariants, coverage map, and the
// Table V shape (AFLFast cracks the one-byte gif2png case, both fuzzers
// fail the container-reform cases within budget).
#include <gtest/gtest.h>

#include "corpus/pairs.h"
#include "fuzz/fuzzer.h"
#include "vm/asm.h"

namespace octopocs::fuzz {
namespace {

TEST(Mutator, DeterministicStageIsDeterministic) {
  Mutator a(1), b(2);  // rng seed must not matter for the det stage
  const Bytes input{1, 2, 3, 4};
  EXPECT_EQ(a.DeterministicStage(input, 100),
            b.DeterministicStage(input, 100));
}

TEST(Mutator, DeterministicStageRespectsBudget) {
  Mutator m(1);
  const Bytes input(64, 0xAA);
  EXPECT_EQ(m.DeterministicStage(input, 10).size(), 10u);
}

TEST(Mutator, BitflipsCoverEveryBit) {
  Mutator m(1);
  const Bytes input{0x00};
  const auto batch = m.DeterministicStage(input, 8);
  ASSERT_EQ(batch.size(), 8u);
  for (int bit = 0; bit < 8; ++bit) {
    EXPECT_EQ(batch[bit][0], 1u << bit);
  }
}

TEST(Mutator, HavocPreservesLength) {
  Mutator m(99);
  const Bytes input(37, 0x55);
  const Bytes other(12, 0x77);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(m.Havoc(input, other).size(), input.size());
  }
}

TEST(Mutator, HavocEventuallyChangesSomething) {
  Mutator m(7);
  const Bytes input(8, 0);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (m.Havoc(input, input) != input) ++changed;
  }
  EXPECT_GT(changed, 25);
}

TEST(Coverage, NewEdgesDetected) {
  CoverageMap map;
  EXPECT_EQ(map.Merge({1, 2, 3}), 3u);
  EXPECT_EQ(map.Merge({2, 3, 4}), 1u);
  EXPECT_EQ(map.count(), 4u);
}

TEST(Coverage, PathHashDiscriminates) {
  EXPECT_NE(CoverageMap::PathHash({1, 2, 3}), CoverageMap::PathHash({3, 2, 1}));
  EXPECT_EQ(CoverageMap::PathHash({1, 2}), CoverageMap::PathHash({1, 2}));
}

// A trivially fuzzable target: crash when the first byte is 0x42.
const char* kEasyTarget = R"(
  func main()
    movi %n, 1
    alloc %buf, %n
    read %got, %buf, %n
    load.1 %c, %buf, 0
    call %v, check(%c)
    ret %v
  func check(c)
    movi %magic, 0x42
    cmpeq %boom, %c, %magic
    br %boom, crash, fine
  crash:
    movi %z, 0
    load.1 %v, %z, 0     ; null deref
    ret %v
  fine:
    ret %c
)";

TEST(AflFast, FindsShallowCrash) {
  const vm::Program t = vm::Assemble(kEasyTarget);
  FuzzOptions opts;
  opts.max_execs = 20'000;
  AflFastFuzzer fuzzer(t, t.FindFunction("check"), {Bytes{0x00}}, opts);
  const FuzzResult r = fuzzer.Run();
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.trap, vm::TrapKind::kNullDeref);
  ASSERT_FALSE(r.crashing_input.empty());
  EXPECT_EQ(r.crashing_input[0], 0x42);
}

TEST(AflFast, CrashOutsideTargetDoesNotVerify) {
  // The crash is real but sits outside the target shared function:
  // "verification" in the paper's sense must not fire.
  const char* src = R"(
    func main()
      movi %n, 1
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %c, %buf, 0
      movi %magic, 0x42
      cmpeq %boom, %c, %magic
      br %boom, crash, fine
    crash:
      movi %z, 0
      load.1 %v, %z, 0
      ret %v
    fine:
      call %v, never(%c)
      ret %v
    func never(c)
      ret %c
  )";
  const vm::Program t = vm::Assemble(src);
  FuzzOptions opts;
  opts.max_execs = 5'000;
  AflFastFuzzer fuzzer(t, t.FindFunction("never"), {Bytes{0x42}}, opts);
  const FuzzResult r = fuzzer.Run();
  EXPECT_FALSE(r.verified);
}

TEST(AflGo, FindsShallowCrashWithDirection) {
  const vm::Program t = vm::Assemble(kEasyTarget);
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  FuzzOptions opts;
  opts.max_execs = 40'000;
  AflGoFuzzer fuzzer(t, t.FindFunction("check"), graph, {Bytes{0x00}}, opts);
  const FuzzResult r = fuzzer.Run();
  EXPECT_TRUE(r.verified);
}

TEST(FuzzTable5, AflFastCracksArtificialGif2png) {
  // Pair 9's target needs a single guiding byte fixed ('x' → 'a'); the
  // deterministic/havoc stages find that quickly — the paper's one
  // AFLFast success (201 s there; an execution budget here).
  const corpus::Pair pair = corpus::BuildPair(9);
  FuzzOptions opts;
  opts.max_execs = 150'000;
  AflFastFuzzer fuzzer(pair.t, pair.t.FindFunction("gif_read_image"),
                       {pair.poc}, opts);
  const FuzzResult r = fuzzer.Run();
  EXPECT_TRUE(r.verified) << "execs=" << r.execs;
  EXPECT_EQ(r.trap, pair.expected_trap);
}

TEST(FuzzTable5, AflFastFailsContainerReform) {
  // Pair 8 needs the bare-J2K PoC rebuilt into a PDF container — a
  // multi-byte structural transformation mutation cannot synthesize
  // within budget (the paper's 20-hour N/A rows).
  const corpus::Pair pair = corpus::BuildPair(8);
  FuzzOptions opts;
  opts.max_execs = 60'000;
  AflFastFuzzer fuzzer(pair.t, pair.t.FindFunction("mj2k_decode"),
                       {pair.poc}, opts);
  const FuzzResult r = fuzzer.Run();
  EXPECT_FALSE(r.verified);
  EXPECT_EQ(r.execs, opts.max_execs);
}

TEST(FuzzTable5, AflGoFailsContainerReform) {
  const corpus::Pair pair = corpus::BuildPair(8);
  const cfg::Cfg graph = cfg::Cfg::Build(pair.t);
  FuzzOptions opts;
  opts.max_execs = 60'000;
  AflGoFuzzer fuzzer(pair.t, pair.t.FindFunction("mj2k_decode"), graph,
                     {pair.poc}, opts);
  const FuzzResult r = fuzzer.Run();
  EXPECT_FALSE(r.verified);
}

TEST(Fuzz, DeterministicGivenSeed) {
  const corpus::Pair pair = corpus::BuildPair(9);
  FuzzOptions opts;
  opts.max_execs = 3'000;
  opts.rng_seed = 1234;
  AflFastFuzzer a(pair.t, pair.t.FindFunction("gif_read_image"), {pair.poc},
                  opts);
  AflFastFuzzer b(pair.t, pair.t.FindFunction("gif_read_image"), {pair.poc},
                  opts);
  const FuzzResult ra = a.Run();
  const FuzzResult rb = b.Run();
  EXPECT_EQ(ra.verified, rb.verified);
  EXPECT_EQ(ra.execs, rb.execs);
  EXPECT_EQ(ra.edges_covered, rb.edges_covered);
}

}  // namespace
}  // namespace octopocs::fuzz
