// Property suite: the reform invariant over randomized container pairs.
//
// For every randomly generated S/T pair sharing a vulnerable record
// decoder, the pipeline must satisfy:
//   - if the verdict is Triggered, the emitted poc' crashes T with the
//     expected trap class when run concretely (soundness of case i);
//   - if the verdict is NotTriggerable, brute-force over T's relevant
//     header space must not find a crash either (spot-check of case
//     ii/iii soundness on these small containers);
//   - the pipeline never reports Failure on this well-behaved family.
//
// The generator varies: magic length/content, position and width of the
// record-count field, the number of benign records before the crash,
// the record size, and whether T hardcodes the vulnerable parameter
// (which must flip the verdict to NotTriggerable).
#include <gtest/gtest.h>

#include <string>

#include "core/octopocs.h"
#include "support/rng.h"
#include "vm/asm.h"

namespace octopocs::core {
namespace {

struct GeneratedPair {
  vm::Program s;
  vm::Program t;
  Bytes poc;
  bool t_hardcoded;  // expect NotTriggerable
};

std::string MagicCheck(const Bytes& magic, const char* reg_prefix) {
  std::string src;
  src += "    movi %mn, " + std::to_string(magic.size()) + "\n";
  src += "    alloc %mbuf, %mn\n";
  src += "    read %mgot, %mbuf, %mn\n";
  for (std::size_t i = 0; i < magic.size(); ++i) {
    const std::string r = std::string(reg_prefix) + std::to_string(i);
    src += "    load.1 %" + r + ", %mbuf, " + std::to_string(i) + "\n";
    src += "    movi %want" + std::to_string(i) + ", " +
           std::to_string(magic[i]) + "\n";
    src += "    cmpeq %okm" + std::to_string(i) + ", %" + r + ", %want" +
           std::to_string(i) + "\n";
    src += "    assert %okm" + std::to_string(i) + "\n";
  }
  return src;
}

/// The shared decoder: reads `rec_size` bytes, sums the first two, and
/// writes through an unchecked 16-slot table.
std::string SharedDecoder(unsigned rec_size) {
  std::string src = R"(
  func dec(mode)
    movi %rn, )" + std::to_string(rec_size) + R"(
    alloc %rec, %rn
    read %rgot, %rec, %rn
    load.1 %a, %rec, 0
    load.1 %b, %rec, 1
    add %idx, %a, %b
    movi %lim, 16
    alloc %tbl, %lim
    add %p, %tbl, %idx
    movi %one, 1
    store.1 %one, %p, 0
    ret %idx
)";
  return src;
}

std::string Harness(const Bytes& magic, bool hardcoded) {
  std::string src = "  func main()\n";
  src += MagicCheck(magic, "m");
  if (hardcoded) {
    // T never lets the file drive the decoder: it synthesizes one
    // benign record in memory... modelled as calling dec over a
    // zero-filled region by seeking to a fixed empty offset — the
    // decoder still reads from the file though, so instead hardcode by
    // *not calling dec at all* for file data: call a clamped wrapper.
    src += R"(
    movi %zero, 0
    call %v, dec_clamped(%zero)
    ret %v
  func dec_clamped(mode)
    ret %mode
)";
    return src;
  }
  src += R"(
    movi %cn, 1
    alloc %cbuf, %cn
    read %cgot, %cbuf, %cn
    load.1 %cnt, %cbuf, 0
    movi %i, 0
    movi %zero, 0
  loop:
    cmpltu %more, %i, %cnt
    br %more, body, done
  body:
    call %v, dec(%zero)
    addi %i, %i, 1
    jmp loop
  done:
    ret %i
)";
  return src;
}

GeneratedPair Generate(std::uint64_t seed) {
  Rng rng(seed);
  GeneratedPair out;

  const unsigned s_magic_len = 2 + rng.Below(4);
  const unsigned t_magic_len = 2 + rng.Below(4);
  Bytes s_magic, t_magic;
  for (unsigned i = 0; i < s_magic_len; ++i) {
    s_magic.push_back(static_cast<std::uint8_t>('A' + rng.Below(26)));
  }
  for (unsigned i = 0; i < t_magic_len; ++i) {
    t_magic.push_back(static_cast<std::uint8_t>('a' + rng.Below(26)));
  }
  const unsigned rec_size = 2 + rng.Below(3);
  const unsigned benign = rng.Below(3);
  out.t_hardcoded = rng.Chance(1, 4);

  const std::string shared = SharedDecoder(rec_size);
  out.s = vm::AssembleParts({shared, Harness(s_magic, false)});
  out.t = vm::AssembleParts({shared, Harness(t_magic, out.t_hardcoded)});

  // PoC for S: magic, count, benign records, crash record.
  out.poc = s_magic;
  out.poc.push_back(static_cast<std::uint8_t>(benign + 1));
  for (unsigned r = 0; r < benign; ++r) {
    for (unsigned i = 0; i < rec_size; ++i) {
      out.poc.push_back(static_cast<std::uint8_t>(rng.Below(7)));
    }
  }
  out.poc.push_back(0x80);
  out.poc.push_back(0x90);  // 0x80 + 0x90 >= 16 → crash
  for (unsigned i = 2; i < rec_size; ++i) {
    out.poc.push_back(static_cast<std::uint8_t>(rng.Next()));
  }
  return out;
}

class ReformInvariant : public ::testing::TestWithParam<int> {};

TEST_P(ReformInvariant, VerdictIsSoundOnRandomPairs) {
  const GeneratedPair g = Generate(7'000 + GetParam());

  // Sanity: S must crash on the generated PoC.
  ASSERT_EQ(vm::RunProgram(g.s, g.poc).trap, vm::TrapKind::kOutOfBounds);

  Octopocs pipeline(g.s, g.t, {"dec"}, g.poc);
  const VerificationReport report = pipeline.Verify();

  if (g.t_hardcoded) {
    EXPECT_EQ(report.verdict, Verdict::kNotTriggerable) << report.detail;
  } else {
    ASSERT_EQ(report.verdict, Verdict::kTriggered) << report.detail;
    // The reform invariant: poc' crashes T with the same trap class.
    const auto run = vm::RunProgram(g.t, report.reformed_poc);
    EXPECT_EQ(run.trap, vm::TrapKind::kOutOfBounds)
        << vm::TrapName(run.trap) << ": " << run.trap_message;
    // And the original PoC does NOT (different magic — reform was
    // necessary). Magics are drawn from disjoint alphabets.
    EXPECT_NE(vm::RunProgram(g.t, g.poc).trap, vm::TrapKind::kOutOfBounds);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomContainers, ReformInvariant,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace octopocs::core
