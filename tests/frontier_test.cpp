// Work-stealing frontier parallelism: deque/coordinator primitives and
// the headline property — a frontier run with any worker count produces
// the *same* result as the serial directed-DFS drive loop, byte for
// byte. The container this test suite runs in may have a single CPU;
// that is deliberate: frontier_jobs is not clamped to the hardware, and
// determinism has to hold oversubscribed, where steals and interleavings
// are at their most adversarial.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cfg/cfg.h"
#include "core/octopocs.h"
#include "corpus/pairs.h"
#include "support/thread_pool.h"
#include "symex/executor.h"
#include "vm/asm.h"

namespace octopocs {
namespace {

// -- WorkStealingDeque ------------------------------------------------------

TEST(WorkStealingDequeTest, OwnerPopsLifoThievesStealFifo) {
  support::WorkStealingDeque<int> dq;
  dq.PushBottom(1);
  dq.PushBottom(2);
  dq.PushBottom(3);
  EXPECT_EQ(dq.size(), 3u);

  int v = 0;
  ASSERT_TRUE(dq.PopBottom(&v));
  EXPECT_EQ(v, 3) << "owner end is LIFO (depth-first locality)";
  ASSERT_TRUE(dq.StealTop(&v));
  EXPECT_EQ(v, 1) << "thief end is FIFO (oldest = largest subtree)";
  ASSERT_TRUE(dq.PopBottom(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(dq.PopBottom(&v));
  EXPECT_FALSE(dq.StealTop(&v));
  EXPECT_EQ(dq.size(), 0u);
}

TEST(WorkStealingDequeTest, ConcurrentStealsLoseNoItems) {
  support::WorkStealingDeque<int> dq;
  constexpr int kItems = 2000;
  for (int i = 0; i < kItems; ++i) dq.PushBottom(i);

  std::atomic<int> taken{0};
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0);
  const auto drain = [&](bool owner) {
    int v = 0;
    while (owner ? dq.PopBottom(&v) : dq.StealTop(&v)) {
      seen[static_cast<std::size_t>(v)].fetch_add(1);
      taken.fetch_add(1);
    }
  };
  std::thread a(drain, true), b(drain, false), c(drain, false);
  a.join();
  b.join();
  c.join();
  EXPECT_EQ(taken.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1)
        << "item " << i << " taken exactly once";
  }
}

// -- StealCoordinator -------------------------------------------------------

TEST(StealCoordinatorTest, DrainsWhenPendingHitsZero) {
  support::StealCoordinator coord;
  coord.NoteEnqueued();
  EXPECT_EQ(coord.pending(), 1u);
  coord.NoteDone();
  EXPECT_EQ(coord.pending(), 0u);
  // Drained pool: a worker that failed to find work must exit, not park.
  EXPECT_FALSE(coord.WaitForWork(coord.Version()));
  EXPECT_FALSE(coord.aborted());
}

TEST(StealCoordinatorTest, StaleVersionMeansRetryWithoutParking) {
  support::StealCoordinator coord;
  coord.NoteEnqueued();
  const std::uint64_t seen = coord.Version();
  coord.NoteEnqueued();  // bumps version: something changed since `seen`
  EXPECT_TRUE(coord.WaitForWork(seen))
      << "version moved between the failed steal and the wait, so the "
         "worker must loop back and retry instead of sleeping";
  coord.NoteDone();
  coord.NoteDone();
}

TEST(StealCoordinatorTest, AbortWakesParkedWorkers) {
  support::StealCoordinator coord;
  coord.NoteEnqueued();  // pending work that will never complete
  // Current version + pending work + no new enqueues → the worker
  // parks (or sees the abort immediately); either way it must return
  // false rather than sleep forever.
  std::atomic<bool> wait_result{true};
  std::thread parked(
      [&] { wait_result.store(coord.WaitForWork(coord.Version())); });
  coord.Abort();
  parked.join();
  EXPECT_FALSE(wait_result.load());
  EXPECT_TRUE(coord.aborted());
  EXPECT_FALSE(coord.WaitForWork(coord.Version()))
      << "after abort every wait returns false immediately";
}

// -- Frontier executor determinism ------------------------------------------

// A branchy probe: two viable directions at the first branch, each
// imposing a different requirement on byte 1, then a shared second
// check on byte 2. Serial directed DFS commits one specific goal state
// (and hence one specific witness); every frontier schedule must commit
// the same one.
const char* kBranchyProgram = R"(
  func main()
    movi %n, 4
    alloc %buf, %n
    read %got, %buf, %n
    load.1 %a, %buf, 0
    load.1 %b, %buf, 1
    load.1 %c, %buf, 2
    movi %five, 5
    cmpeq %isa, %a, %five
    br %isa, lo, hi
  lo:
    movi %w1, 7
    cmpeq %c1, %b, %w1
    br %c1, mid, dead
  hi:
    movi %w2, 9
    cmpeq %c2, %b, %w2
    br %c2, mid, dead
  mid:
    movi %w3, 3
    cmpeq %c3, %c, %w3
    br %c3, go, dead
  dead:
    ret %a
  go:
    call %v, ep_fn(%c)
    ret %v
  func ep_fn(x)
    ret %x
)";

symex::SymexResult RunBranchy(std::uint32_t frontier_jobs) {
  const vm::Program t = vm::Assemble(kBranchyProgram);
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  symex::ExecutorOptions opts;
  opts.frontier_jobs = frontier_jobs;
  symex::SymExecutor exec(t, graph, t.FindFunction("ep_fn"), opts);
  return exec.ReachEp(/*directed=*/true);
}

TEST(FrontierExecutorTest, MatchesSerialWitnessByteForByte) {
  const symex::SymexResult serial = RunBranchy(1);
  ASSERT_EQ(serial.status, symex::SymexStatus::kReachedEp);

  for (const std::uint32_t jobs : {2u, 3u, 8u}) {
    const symex::SymexResult par = RunBranchy(jobs);
    EXPECT_EQ(par.status, serial.status) << "jobs=" << jobs;
    EXPECT_EQ(par.poc, serial.poc)
        << "jobs=" << jobs
        << ": frontier must commit the serial run's goal state";
    EXPECT_EQ(par.detail, serial.detail) << "jobs=" << jobs;
    EXPECT_EQ(par.loop_dead_observed, serial.loop_dead_observed)
        << "jobs=" << jobs;
  }
}

TEST(FrontierExecutorTest, RepeatedRunsAreDeterministic) {
  const symex::SymexResult first = RunBranchy(3);
  ASSERT_EQ(first.status, symex::SymexStatus::kReachedEp);
  for (int run = 0; run < 4; ++run) {
    const symex::SymexResult again = RunBranchy(3);
    EXPECT_EQ(again.status, first.status) << "run " << run;
    EXPECT_EQ(again.poc, first.poc) << "run " << run;
    EXPECT_EQ(again.detail, first.detail) << "run " << run;
  }
}

TEST(FrontierExecutorTest, ProgramDeadVerdictsSurviveParallelism) {
  // ep guarded by an impossible byte equality: the frontier must drain
  // and report the same program-dead/unsat classification as serial.
  const vm::Program t = vm::Assemble(R"(
    func main()
      movi %n, 2
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %a, %buf, 0
      movi %big, 300
      cmpeq %hit, %a, %big
      br %hit, call_ep, out
    call_ep:
      call %v, ep_fn(%a)
      ret %v
    out:
      ret %a
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);

  const auto run = [&](std::uint32_t jobs) {
    symex::ExecutorOptions opts;
    opts.frontier_jobs = jobs;
    symex::SymExecutor exec(t, graph, t.FindFunction("ep_fn"), opts);
    return exec.ReachEp(/*directed=*/true);
  };
  const symex::SymexResult serial = run(1);
  const symex::SymexResult par = run(4);
  EXPECT_EQ(par.status, serial.status);
  EXPECT_EQ(par.detail, serial.detail);
}

// -- Full-pipeline identity --------------------------------------------------

TEST(FrontierPipelineTest, VerifyPairMatchesSerial) {
  // One Triggered pair and the corpus's directed-symex NotTriggerable
  // pair: reformed PoC, verdict, classification, and detail must all be
  // byte-identical between the serial and frontier drives.
  for (const int idx : {1, 14}) {
    const corpus::Pair pair = corpus::BuildPair(idx);

    const core::VerificationReport serial = core::VerifyPair(pair, {});

    core::PipelineOptions par_opts;
    par_opts.symex.frontier_jobs = 3;
    const core::VerificationReport par = core::VerifyPair(pair, par_opts);

    EXPECT_EQ(par.verdict, serial.verdict) << "pair " << idx;
    EXPECT_EQ(par.type, serial.type) << "pair " << idx;
    EXPECT_EQ(par.symex_status, serial.symex_status) << "pair " << idx;
    EXPECT_EQ(par.detail, serial.detail) << "pair " << idx;
    EXPECT_EQ(par.reformed_poc, serial.reformed_poc) << "pair " << idx;
    EXPECT_EQ(par.bunch_offsets, serial.bunch_offsets) << "pair " << idx;
    EXPECT_EQ(par.observed_trap, serial.observed_trap) << "pair " << idx;
  }
}

}  // namespace
}  // namespace octopocs
