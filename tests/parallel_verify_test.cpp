// Parallel corpus verification: ParallelFor must cover every index
// exactly once and propagate worker exceptions, and VerifyCorpus must be
// byte-identical between serial and parallel runs over the full corpus —
// the determinism guarantee the --jobs flag advertises.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/parallel_verify.h"
#include "corpus/pairs.h"
#include "support/thread_pool.h"

namespace octopocs {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  support::ParallelFor(kCount, 4,
                       [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SerialPathRunsInline) {
  std::vector<std::size_t> order;
  support::ParallelFor(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, WorkerExceptionIsRethrown) {
  EXPECT_THROW(support::ParallelFor(
                   8, 4,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // Serial path too.
  EXPECT_THROW(support::ParallelFor(
                   8, 1,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ParallelForTest, ZeroCountIsANoOp) {
  bool ran = false;
  support::ParallelFor(0, 4, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelVerifyTest, ParallelIsByteIdenticalToSerial) {
  const std::vector<corpus::Pair> pairs = corpus::BuildCorpus();
  const core::PipelineOptions opts;

  const auto serial = core::VerifyCorpus(pairs, opts, 1);
  const auto parallel = core::VerifyCorpus(pairs, opts, 4);

  ASSERT_EQ(serial.size(), pairs.size());
  ASSERT_EQ(parallel.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    SCOPED_TRACE(pairs[i].s_name);
    EXPECT_EQ(serial[i].verdict, parallel[i].verdict);
    EXPECT_EQ(serial[i].type, parallel[i].type);
    EXPECT_EQ(serial[i].detail, parallel[i].detail);
    EXPECT_EQ(serial[i].ep_name, parallel[i].ep_name);
    EXPECT_EQ(serial[i].bunch_count, parallel[i].bunch_count);
    EXPECT_EQ(serial[i].reformed_poc, parallel[i].reformed_poc);
    EXPECT_EQ(serial[i].bunch_offsets, parallel[i].bunch_offsets);
  }
}

}  // namespace
}  // namespace octopocs
