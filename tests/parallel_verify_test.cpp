// Parallel corpus verification: ParallelFor must cover every index
// exactly once and propagate worker exceptions, and VerifyCorpus must be
// byte-identical between serial and parallel runs over the full corpus —
// the determinism guarantee the --jobs flag advertises.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/parallel_verify.h"
#include "corpus/pairs.h"
#include "support/thread_pool.h"

namespace octopocs {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  support::ParallelFor(kCount, 4,
                       [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SerialPathRunsInline) {
  std::vector<std::size_t> order;
  support::ParallelFor(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, WorkerExceptionIsRethrown) {
  EXPECT_THROW(support::ParallelFor(
                   8, 4,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // Serial path too.
  EXPECT_THROW(support::ParallelFor(
                   8, 1,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ParallelForTest, ZeroCountIsANoOp) {
  bool ran = false;
  support::ParallelFor(0, 4, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelVerifyTest, ParallelIsByteIdenticalToSerial) {
  const std::vector<corpus::Pair> pairs = corpus::BuildCorpus();
  const core::PipelineOptions opts;

  const auto serial = core::VerifyCorpus(pairs, opts, 1);
  const auto parallel = core::VerifyCorpus(pairs, opts, 4);

  ASSERT_EQ(serial.size(), pairs.size());
  ASSERT_EQ(parallel.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    SCOPED_TRACE(pairs[i].s_name);
    EXPECT_EQ(serial[i].verdict, parallel[i].verdict);
    EXPECT_EQ(serial[i].type, parallel[i].type);
    EXPECT_EQ(serial[i].detail, parallel[i].detail);
    EXPECT_EQ(serial[i].ep_name, parallel[i].ep_name);
    EXPECT_EQ(serial[i].bunch_count, parallel[i].bunch_count);
    EXPECT_EQ(serial[i].reformed_poc, parallel[i].reformed_poc);
    EXPECT_EQ(serial[i].bunch_offsets, parallel[i].bunch_offsets);
  }
}

TEST(ParallelVerifyTest, CostHintsChangeScheduleNotResults) {
  // Longest-pair-first scheduling consumes recorded wall times that may
  // be stale — or outright garbage — so the hints must only permute the
  // launch order, never the per-slot report. Reports are written by
  // input index, which is what makes any permutation safe.
  const std::vector<corpus::Pair> pairs = corpus::BuildCorpus();
  const core::PipelineOptions opts;

  const auto baseline = core::VerifyCorpus(pairs, opts, 4);

  // Reverse-sorted, uniform, and nonsense hints (wrong sign, NaN-free
  // but meaningless) must all reproduce the baseline byte for byte.
  std::vector<std::vector<double>> hint_sets;
  std::vector<double> ascending, uniform, garbage;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ascending.push_back(static_cast<double>(i));
    uniform.push_back(1.0);
    garbage.push_back(i % 2 == 0 ? -7.5 : 1e18);
  }
  hint_sets.push_back(ascending);
  hint_sets.push_back(uniform);
  hint_sets.push_back(garbage);
  hint_sets.push_back({1.0, 2.0});  // wrong size: hints ignored entirely

  for (std::size_t h = 0; h < hint_sets.size(); ++h) {
    SCOPED_TRACE("hint set " + std::to_string(h));
    const auto hinted = core::VerifyCorpus(pairs, opts, 4, 0, &hint_sets[h]);
    ASSERT_EQ(hinted.size(), baseline.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      SCOPED_TRACE(pairs[i].s_name);
      EXPECT_EQ(baseline[i].verdict, hinted[i].verdict);
      EXPECT_EQ(baseline[i].type, hinted[i].type);
      EXPECT_EQ(baseline[i].detail, hinted[i].detail);
      EXPECT_EQ(baseline[i].reformed_poc, hinted[i].reformed_poc);
      EXPECT_EQ(baseline[i].bunch_offsets, hinted[i].bunch_offsets);
    }
  }
}

}  // namespace
}  // namespace octopocs
