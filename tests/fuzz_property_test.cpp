// Properties the fuzz-fallback rung's determinism contract rests on
// (DESIGN.md §16): pinned bunch bytes survive every mutation stage, an
// empty pin set changes nothing, and the backward distance map the
// campaign scores candidates with is strictly monotone along a chain
// to ep.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cfg/cfg.h"
#include "fuzz/mutator.h"
#include "vm/asm.h"

namespace octopocs::fuzz {
namespace {

Bytes CountingSeed(std::size_t n) {
  Bytes seed(n);
  for (std::size_t i = 0; i < n; ++i) {
    seed[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  return seed;
}

TEST(MutatorProperty, PinnedBytesSurviveEveryMutant) {
  // The rung pins P1's bunch byte offsets so mutation effort goes into
  // the container around the crash primitives — no candidate from any
  // stage may disturb a pinned byte.
  const Bytes seed = CountingSeed(32);
  const std::vector<std::uint32_t> pins = {0, 2, 7, 19, 31};

  Mutator mutator(42);
  mutator.PinOffsets(pins);

  std::vector<Bytes> candidates = mutator.DeterministicStage(seed, 8192);
  EXPECT_GT(candidates.size(), 100u) << "deterministic stage should fire";
  for (int i = 0; i < 2000; ++i) {
    candidates.push_back(mutator.Havoc(seed, seed));
  }

  for (const Bytes& c : candidates) {
    ASSERT_EQ(c.size(), seed.size()) << "length-preserving operators only";
    for (const std::uint32_t off : pins) {
      ASSERT_EQ(c[off], seed[off])
          << "pinned byte " << off << " was mutated";
    }
    // ...and at least the unpinned region is actually being explored.
  }
  bool any_differs = false;
  for (const Bytes& c : candidates) {
    if (c != seed) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "pinning must not freeze the whole input";
}

TEST(MutatorProperty, EmptyPinSetIsByteIdenticalToBaseline) {
  // PinOffsets({}) must leave the rng draw sequence and the emitted
  // candidates exactly as the unpinned baseline produces them — the
  // determinism contract says the pin mask changes *which* bytes move,
  // never the schedule.
  const Bytes seed = CountingSeed(24);

  Mutator plain(7);
  Mutator pinned_empty(7);
  pinned_empty.PinOffsets({});

  const auto a = plain.DeterministicStage(seed, 4096);
  const auto b = pinned_empty.DeterministicStage(seed, 4096);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "deterministic candidate " << i << " diverged";
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(plain.Havoc(seed, seed), pinned_empty.Havoc(seed, seed))
        << "havoc draw " << i << " diverged";
  }
}

TEST(DistanceProperty, ChainDistancesAreStrictlyMonotoneTowardEp) {
  // On a straight-line chain main → c0 → c1 → c2 → c3 → ep every hop
  // must shrink the scored distance by exactly one — the monotone
  // gradient AFLGo's annealing climbs. A plateau or inversion here
  // would silently defeat the "directed" in directed fuzzing.
  const vm::Program program = vm::Assemble(R"(
    func main()
      movi %z, 0
      jmp c0
    c0:
      jmp c1
    c1:
      jmp c2
    c2:
      jmp c3
    c3:
      call %v, ep()
      ret %v
    func ep()
      movi %r, 7
      ret %r
  )");
  ASSERT_FALSE(vm::Validate(program).has_value());
  const vm::FuncId main_fn = program.FindFunction("main");
  const vm::FuncId ep = program.FindFunction("ep");
  const cfg::Cfg graph = cfg::Cfg::Build(program);
  const cfg::DistanceMap distances = graph.BackwardReachability(ep);

  ASSERT_EQ(distances.Distance(ep, 0), 0u);
  ASSERT_TRUE(distances.EntryReaches());

  const std::size_t blocks = program.Fn(main_fn).blocks.size();
  ASSERT_EQ(blocks, 5u);
  std::vector<std::uint32_t> seen;
  for (vm::BlockId b = 0; b < blocks; ++b) {
    const auto d = distances.Distance(main_fn, b);
    ASSERT_TRUE(d.has_value()) << "block " << b << " must reach ep";
    ASSERT_GE(*d, 1u);
    seen.push_back(*d);
    // Each chain block has exactly one successor, one hop closer.
    const auto& succs = graph.Successors(main_fn, b);
    ASSERT_EQ(succs.size(), 1u) << "block " << b;
    const auto next = distances.Distance(succs[0].fn, succs[0].block);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, *d - 1) << "distance must fall by 1 at block " << b;
  }
  // All five distances are distinct: 5,4,3,2,1 from entry to the call.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace octopocs::fuzz
