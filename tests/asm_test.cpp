// Assembler and disassembler: syntax coverage, error reporting,
// round-trip stability.
#include <gtest/gtest.h>

#include "vm/asm.h"
#include "vm/disasm.h"
#include "vm/interp.h"

namespace octopocs::vm {
namespace {

TEST(Asm, ParsesProgramNameAndEntry) {
  const Program p = Assemble(R"(
    program "demo"
    func helper()
      ret
    func main()
      ret
  )");
  EXPECT_EQ(p.name, "demo");
  EXPECT_EQ(p.entry, p.FindFunction("main"));
  EXPECT_EQ(p.functions.size(), 2u);
}

TEST(Asm, RequiresMain) {
  EXPECT_THROW(Assemble("func helper()\n  ret\n"), AsmError);
}

TEST(Asm, ImmediateForms) {
  const Program p = Assemble(R"(
    func main()
      movi %a, 100
      movi %b, 0x1F
      movi %c, 'A'
      movi %d, -1
      ret %a
  )");
  const auto& instrs = p.functions[0].blocks[0].instrs;
  EXPECT_EQ(instrs[0].imm, 100u);
  EXPECT_EQ(instrs[1].imm, 0x1Fu);
  EXPECT_EQ(instrs[2].imm, 65u);
  EXPECT_EQ(instrs[3].imm, ~0ULL);
}

TEST(Asm, CharEscapes) {
  const Program p = Assemble(R"(
    func main()
      movi %a, '\n'
      movi %b, '\0'
      movi %c, '\\'
      ret %a
  )");
  const auto& instrs = p.functions[0].blocks[0].instrs;
  EXPECT_EQ(instrs[0].imm, 10u);
  EXPECT_EQ(instrs[1].imm, 0u);
  EXPECT_EQ(instrs[2].imm, 92u);
}

TEST(Asm, DataDirectives) {
  const Program p = Assemble(R"(
    data table:
      .u16 0x13d 0x100
      .u32 7
    data magic:
      .str "GIF87a"
      .bytes de ad
      .zero 3
    func main()
      movi %p, @table
      movi %q, @magic
      ret %p
  )");
  ASSERT_EQ(p.rodata_symbols.size(), 2u);
  EXPECT_EQ(p.rodata_symbols[0].name, "table");
  EXPECT_EQ(p.rodata_symbols[0].offset, 0u);
  EXPECT_EQ(p.rodata_symbols[0].size, 8u);  // 2*u16 + u32
  EXPECT_EQ(p.rodata_symbols[1].size, 6u + 2u + 3u);
  // table contents little-endian
  EXPECT_EQ(p.rodata[0], 0x3D);
  EXPECT_EQ(p.rodata[1], 0x01);
  // magic string then raw bytes then zeros
  EXPECT_EQ(p.rodata[8], 'G');
  EXPECT_EQ(p.rodata[14], 0xDE);
  EXPECT_EQ(p.rodata[16], 0x00);
  // @table resolves to absolute rodata address
  EXPECT_EQ(p.functions[0].blocks[0].instrs[0].imm, kRodataBase);
  EXPECT_EQ(p.functions[0].blocks[0].instrs[1].imm, kRodataBase + 8);
}

TEST(Asm, LabelsAndFallthrough) {
  const Program p = Assemble(R"(
    func main()
      movi %x, 1
      br %x, a, b
    a:
      movi %y, 2
    b:
      ret %x
  )");
  const Function& f = p.functions[0];
  ASSERT_EQ(f.blocks.size(), 3u);
  // Block "a" falls through to "b" with an implicit jump.
  EXPECT_EQ(f.blocks[1].term.kind, TermKind::kJump);
  EXPECT_EQ(f.blocks[1].term.target, 2u);
}

TEST(Asm, LabelFirstNamesEntryBlock) {
  const Program p = Assemble(R"(
    func main()
    start:
      movi %x, 5
      jmp done
    done:
      ret %x
  )");
  EXPECT_EQ(p.functions[0].blocks[0].instrs.size(), 1u);
  const auto r = RunProgram(p, {});
  EXPECT_EQ(r.return_value, 5u);
}

TEST(Asm, ForwardLabelReferences) {
  const auto r = RunProgram(Assemble(R"(
    func main()
      movi %x, 0
      jmp later
    later:
      movi %x, 9
      ret %x
  )"), {});
  EXPECT_EQ(r.return_value, 9u);
}

TEST(Asm, ErrorsCarryLineNumbers) {
  try {
    Assemble("func main()\n  movi %x, 1\n  bogus %x\n  ret %x\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(Asm, RejectsUndefinedLabel) {
  EXPECT_THROW(Assemble(R"(
    func main()
      jmp nowhere
  )"), AsmError);
}

TEST(Asm, RejectsDuplicateLabel) {
  EXPECT_THROW(Assemble(R"(
    func main()
    a:
      nop
      jmp a
    a:
      ret
  )"), AsmError);
}

TEST(Asm, RejectsUnterminatedFunction) {
  EXPECT_THROW(Assemble(R"(
    func main()
      movi %x, 1
  )"), AsmError);
}

TEST(Asm, RejectsUnknownCallTarget) {
  EXPECT_THROW(Assemble(R"(
    func main()
      call %v, ghost()
      ret %v
  )"), AsmError);
}

TEST(Asm, RejectsArgCountMismatch) {
  EXPECT_THROW(Assemble(R"(
    func main()
      movi %x, 1
      call %v, f(%x)
      ret %v
    func f(a, b)
      ret %a
  )"), AsmError);
}

TEST(Asm, RejectsUnknownDataSymbol) {
  EXPECT_THROW(Assemble(R"(
    func main()
      movi %p, @ghost
      ret %p
  )"), AsmError);
}

TEST(Asm, RejectsUnreachableCode) {
  EXPECT_THROW(Assemble(R"(
    func main()
      ret
      movi %x, 1
  )"), AsmError);
}

TEST(Asm, TrapTerminatesBlock) {
  const Program p = Assemble(R"(
    func main()
      movi %x, 1
      br %x, bad, ok
    bad:
      trap
    ok:
      ret %x
  )");
  const auto r = RunProgram(p, {});
  EXPECT_EQ(r.trap, TrapKind::kAbort);
}

TEST(Asm, AssembleParts) {
  const char* lib = R"(
    func twice(a)
      add %r, %a, %a
      ret %r
  )";
  const char* harness = R"(
    func main()
      movi %x, 21
      call %v, twice(%x)
      ret %v
  )";
  const Program p = AssembleParts({lib, harness});
  EXPECT_EQ(RunProgram(p, {}).return_value, 42u);
}

// Round-trip: disassembling and reassembling must preserve behaviour and
// the disassembly must be a fixed point after one round.
TEST(Disasm, RoundTripStable) {
  const Program p = Assemble(R"(
    program "rt"
    data magic:
      .str "MJPG"
    func main()
      movi %n, 8
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %c, %buf, 0
      movi %m, @magic
      load.1 %g, %m, 0
      cmpeq %ok, %c, %g
      br %ok, yes, no
    yes:
      fnaddr %f, helper
      icall %v, %f(%c)
      ret %v
    no:
      trap
    func helper(a)
      addi %r, %a, 1
      ret %r
  )");
  const std::string d1 = Disassemble(p);
  const Program p2 = Assemble(d1);
  const std::string d2 = Disassemble(p2);
  const Program p3 = Assemble(d2);
  EXPECT_EQ(d2, Disassemble(p3));

  // Behavioural equivalence on both branch directions.
  const Bytes hit{'M', 'J', 'P', 'G', 0, 0, 0, 0};
  const Bytes miss{'X', 0, 0, 0, 0, 0, 0, 0};
  for (const auto& input : {hit, miss}) {
    const auto r1 = RunProgram(p, input);
    const auto r2 = RunProgram(p2, input);
    EXPECT_EQ(r1.trap, r2.trap);
    EXPECT_EQ(r1.return_value, r2.return_value);
  }
}

}  // namespace
}  // namespace octopocs::vm
