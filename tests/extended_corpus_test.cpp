// Extended corpus (pairs 16-21): end-to-end verification of the
// beyond-the-paper scenarios — double wrapping, renamed clones, three
// bunches, a stateful use-after-free, a patched divide-by-zero, and
// the mmap input channel.
#include <gtest/gtest.h>

#include "clone/detector.h"
#include "core/octopocs.h"
#include "corpus/extended.h"

namespace octopocs::corpus {
namespace {

class ExtendedGroundTruth : public ::testing::TestWithParam<int> {};

TEST_P(ExtendedGroundTruth, SCrashesWithDocumentedTrap) {
  const Pair pair = BuildExtendedPair(GetParam());
  ASSERT_FALSE(vm::Validate(pair.s).has_value());
  ASSERT_FALSE(vm::Validate(pair.t).has_value());
  const auto run = vm::RunProgram(pair.s, pair.poc);
  EXPECT_EQ(run.trap, pair.expected_trap)
      << vm::TrapName(run.trap) << ": " << run.trap_message;
}

TEST_P(ExtendedGroundTruth, PipelineMatchesExpectedVerdict) {
  const Pair pair = BuildExtendedPair(GetParam());
  const auto report = core::VerifyPair(pair);
  SCOPED_TRACE("pair " + std::to_string(pair.idx) + ": " + report.detail);
  switch (pair.expected) {
    case ExpectedResult::kTypeI:
      EXPECT_EQ(report.verdict, core::Verdict::kTriggered);
      EXPECT_EQ(report.type, core::ResultType::kTypeI);
      break;
    case ExpectedResult::kTypeII:
      EXPECT_EQ(report.verdict, core::Verdict::kTriggered);
      EXPECT_EQ(report.type, core::ResultType::kTypeII);
      break;
    case ExpectedResult::kTypeIII:
      EXPECT_EQ(report.verdict, core::Verdict::kNotTriggerable);
      break;
    case ExpectedResult::kFailure:
      EXPECT_EQ(report.verdict, core::Verdict::kFailure);
      break;
  }
  if (report.poc_generated) {
    EXPECT_EQ(vm::RunProgram(pair.t, report.reformed_poc).trap,
              pair.expected_trap);
  }
}

INSTANTIATE_TEST_SUITE_P(Pairs16To20, ExtendedGroundTruth,
                         ::testing::Range(16, 23));

TEST(Extended, DoubleWrapBuildsBothContainers) {
  // Pair 16: poc' must carry the MBOX magic, an embedded %PDF, and the
  // relocated MJ2K stream — two synthesized wrappers.
  const Pair pair = BuildExtendedPair(16);
  const auto report = core::VerifyPair(pair);
  ASSERT_TRUE(report.poc_generated) << report.detail;
  const Bytes& poc = report.reformed_poc;
  const auto find = [&](std::string_view needle) {
    for (std::size_t i = 0; i + needle.size() <= poc.size(); ++i) {
      bool hit = true;
      for (std::size_t j = 0; j < needle.size(); ++j) {
        if (poc[i + j] != static_cast<std::uint8_t>(needle[j])) hit = false;
      }
      if (hit) return true;
    }
    return false;
  };
  EXPECT_TRUE(find("MBOX"));
  EXPECT_TRUE(find("%PDF"));
  EXPECT_TRUE(find("MJ2K"));
}

TEST(Extended, RenamedCloneFoundByDetectorAndVerified) {
  // Pair 17 end-to-end *through the clone detector*: fingerprints match
  // the renamed body, the name map feeds the pipeline, and the verdict
  // lands despite S and T disagreeing on the function name.
  const Pair pair = BuildExtendedPair(17);
  const auto matches = clone::DetectClones(pair.s, pair.t);
  std::map<std::string, std::string> name_map;
  for (const auto& m : matches) name_map[m.name_in_s] = m.name_in_t;
  ASSERT_EQ(name_map.count("gif_read_image"), 1u);
  EXPECT_EQ(name_map["gif_read_image"], "read_raster_data");

  core::Octopocs pipeline(pair.s, pair.t, {"gif_read_image"}, pair.poc,
                          {}, name_map);
  const auto report = pipeline.Verify();
  EXPECT_EQ(report.verdict, core::Verdict::kTriggered) << report.detail;
}

TEST(Extended, ThreeBunchesExtractedAndPlaced) {
  const Pair pair = BuildExtendedPair(18);
  core::Octopocs pipeline(pair.s, pair.t, pair.shared_functions, pair.poc);
  const auto ep = pipeline.DiscoverEp();
  ASSERT_TRUE(ep.has_value());
  const auto p1 = pipeline.ExtractPrimitives(*ep);
  EXPECT_EQ(p1.ep_encounters, 3u);
  EXPECT_EQ(p1.bunches.size(), 3u);
}

TEST(Extended, UafRequiresTheExactRecordSequence) {
  // Reordering the reset and final data records defuses the PoC: the
  // use-after-free is stateful, not a field-value property.
  const Pair pair = BuildExtendedPair(19);
  Bytes reordered = pair.poc;
  std::swap(reordered[5], reordered[7]);  // reset before first data rec
  std::swap(reordered[6], reordered[8]);
  const auto run = vm::RunProgram(pair.s, reordered);
  EXPECT_NE(run.trap, vm::TrapKind::kNone);  // still crashes (earlier!)
  // The pipeline still reforms the original sequence for T.
  const auto report = core::VerifyPair(pair);
  EXPECT_EQ(report.verdict, core::Verdict::kTriggered) << report.detail;
  EXPECT_EQ(report.bunch_count, 3u);
}

TEST(Extended, PatchedDivisorProvenUnsat) {
  const Pair pair = BuildExtendedPair(20);
  const auto report = core::VerifyPair(pair);
  EXPECT_EQ(report.verdict, core::Verdict::kNotTriggerable);
  EXPECT_EQ(report.symex_status, symex::SymexStatus::kUnsat);
  // The unpatched S-side build is of course still vulnerable.
  EXPECT_EQ(vm::RunProgram(pair.s, pair.poc).trap,
            vm::TrapKind::kDivByZero);
}

TEST(Extended, MmapChannelReformsLikeReadChannel) {
  // Pair 21: every PoC byte reaches ℓ through the file mapping; crash
  // primitives and guiding inputs must work exactly as for read(2).
  const Pair pair = BuildExtendedPair(21);
  const auto report = core::VerifyPair(pair);
  ASSERT_EQ(report.verdict, core::Verdict::kTriggered) << report.detail;
  EXPECT_EQ(report.type, core::ResultType::kTypeI);
  EXPECT_EQ(vm::RunProgram(pair.t, report.reformed_poc).trap,
            vm::TrapKind::kOutOfBounds);
}

TEST(Extended, RegistryShape) {
  const auto pairs = BuildExtendedCorpus();
  ASSERT_EQ(pairs.size(), 7u);
  EXPECT_EQ(pairs.front().idx, 16);
  EXPECT_EQ(pairs.back().idx, 22);
  EXPECT_THROW(BuildExtendedPair(15), std::out_of_range);
  EXPECT_THROW(BuildExtendedPair(23), std::out_of_range);
}

TEST(Extended, SymexDeadPairStagesNotTriggerable) {
  // Pair 22 rung-off: the warm-up loop kills every symbolic state, so
  // the stock pipeline reports the (unsound) loop-cap NotTriggerable —
  // and no fuzz fields leak into the report.
  const Pair pair = BuildExtendedPair(22);
  const auto report = core::VerifyPair(pair);
  EXPECT_EQ(report.verdict, core::Verdict::kNotTriggerable);
  EXPECT_EQ(report.symex_status, symex::SymexStatus::kProgramDead);
  EXPECT_FALSE(report.fuzz_attempted);
}

TEST(Extended, FuzzFallbackUpgradesSymexDeadPair) {
  // Pair 22 rung-on: the directed campaign mutates the (untainted)
  // count header, keeps the pinned entry bytes, and crashes T inside
  // ep — a TriggeredByFuzzing verdict that is byte-reproducible for a
  // fixed seed and execution budget.
  const Pair pair = BuildExtendedPair(22);
  core::PipelineOptions opts;
  opts.fuzz_fallback = true;
  opts.fuzz_seed = 7;
  opts.fuzz_execs = 50'000;
  const auto report = core::VerifyPair(pair, opts);
  ASSERT_EQ(report.verdict, core::Verdict::kTriggeredByFuzzing)
      << report.detail;
  EXPECT_EQ(report.type, core::ResultType::kFuzzed);
  EXPECT_TRUE(report.fuzz_attempted);
  EXPECT_EQ(report.fuzz_seed, 7u);
  EXPECT_GT(report.fuzz_execs_to_crash, 0u);
  // The winning input still carries the pinned crash primitives and
  // still crashes T with the documented trap.
  EXPECT_EQ(vm::RunProgram(pair.t, report.reformed_poc).trap,
            pair.expected_trap);

  const auto again = core::VerifyPair(pair, opts);
  EXPECT_EQ(again.verdict, report.verdict);
  EXPECT_EQ(again.fuzz_execs, report.fuzz_execs);
  EXPECT_EQ(again.fuzz_execs_to_crash, report.fuzz_execs_to_crash);
  EXPECT_EQ(again.reformed_poc, report.reformed_poc);
}

TEST(Extended, FuzzFallbackNeverFlipsDecidedPairs) {
  // The rung must be a no-op for pairs the pipeline already decides:
  // proofs stay kDone before the fuzz phase runs, and a generated poc'
  // passes straight through it.
  core::PipelineOptions opts;
  opts.fuzz_fallback = true;
  for (const int idx : {20, 21}) {
    const Pair pair = BuildExtendedPair(idx);
    const auto off = core::VerifyPair(pair);
    const auto on = core::VerifyPair(pair, opts);
    EXPECT_EQ(on.verdict, off.verdict) << "pair " << idx;
    EXPECT_EQ(on.type, off.type) << "pair " << idx;
    EXPECT_FALSE(on.fuzz_attempted) << "pair " << idx;
  }
}

}  // namespace
}  // namespace octopocs::corpus
