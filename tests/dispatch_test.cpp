// Dispatch-backend equivalence suite.
//
// The threaded backend (computed-goto dispatch + superinstruction
// fusion + strided interrupt checks) is a pure performance substitute
// for the switch interpreter: every observable — ExecResult fields,
// backtraces, the full observer event stream, taint propagation — must
// be identical under kSwitch, kThreaded without fusion, and kThreaded
// with fusion. This suite checks that equivalence on hand-built trap
// programs, a fuel-exactness sweep that lands mid-fused-entry, and a
// randomized program family; plus the three-layer exhaustiveness guard
// (op_info rows, mnemonics, dispatch table) and the strided-deadline
// bound.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "support/rng.h"
#include "taint/taint_engine.h"
#include "vm/asm.h"
#include "vm/fusion.h"
#include "vm/interp.h"
#include "vm/op_info.h"

namespace octopocs::vm {
namespace {

// -- Exhaustiveness: the three per-opcode layers cover every Op ---------------

TEST(Exhaustiveness, EveryOpHasAnOpInfoRow) {
  EXPECT_TRUE(OpInfoTableComplete());
}

TEST(Exhaustiveness, EveryOpHasAMnemonic) {
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const std::string_view name = OpName(static_cast<Op>(i));
    EXPECT_FALSE(name.empty()) << "opcode " << i;
    EXPECT_NE(name, "?") << "opcode " << i;
  }
  // The fallback is reserved for genuinely out-of-range values.
  EXPECT_EQ(OpName(static_cast<Op>(kOpCount)), "?");
}

TEST(Exhaustiveness, ThreadedDispatchTableCoversOpsFusionsAndTerminators) {
  EXPECT_EQ(ThreadedDispatchTableSize(), kDispatchTableSize);
  EXPECT_EQ(kDispatchTableSize, kOpCount + kFusedOpCount + 3);
}

// -- Full-observability comparison machinery ----------------------------------

/// Records every observer callback as a formatted line, so a divergence
/// between backends shows up as a readable textual diff.
class EventLog : public ExecutionObserver {
 public:
  void OnInstr(FuncId fn, BlockId block, std::size_t ip, const Instr& instr,
               std::uint64_t eff_addr, std::uint64_t value) override {
    Add("instr fn=%u b=%u ip=%zu op=%s eff=%llu val=%llu", fn, block, ip,
        OpName(instr.op).data(), (unsigned long long)eff_addr,
        (unsigned long long)value);
  }
  void OnCallEnter(FuncId callee, std::span<const std::uint64_t> args,
                   const Instr* call_site) override {
    std::string s = "enter fn=" + std::to_string(callee) + " site=" +
                    (call_site ? std::string(OpName(call_site->op)) : "-");
    for (const std::uint64_t a : args) s += " " + std::to_string(a);
    lines.push_back(std::move(s));
  }
  void OnCallExit(FuncId callee, std::uint64_t ret, bool returns_value,
                  Reg value_reg, Reg dest_reg) override {
    Add("exit fn=%u ret=%llu rv=%d vreg=%u dreg=%u", callee,
        (unsigned long long)ret, returns_value ? 1 : 0, value_reg, dest_reg);
  }
  void OnFileRead(std::uint64_t dst, std::uint64_t off,
                  std::uint64_t count) override {
    Add("read dst=%llu off=%llu n=%llu", (unsigned long long)dst,
        (unsigned long long)off, (unsigned long long)count);
  }
  void OnBlockTransfer(FuncId fn, BlockId from, BlockId to) override {
    Add("xfer fn=%u %u->%u", fn, from, to);
  }
  void OnIndirectCall(FuncId caller, BlockId block, std::size_t ip,
                      FuncId resolved) override {
    Add("icall fn=%u b=%u ip=%zu -> %u", caller, block, ip, resolved);
  }

  std::vector<std::string> lines;

 private:
  template <typename... Args>
  void Add(const char* fmt, Args... args) {
    char buf[160];
    std::snprintf(buf, sizeof buf, fmt, args...);
    lines.emplace_back(buf);
  }
};

struct RunCapture {
  ExecResult result;
  std::vector<std::string> events;
  /// Taint of every distinct stored-to byte, in address order — a
  /// backend that mispropagates through fused handlers diverges here.
  std::vector<std::string> taint;
};

RunCapture Capture(const Program& program, const Bytes& input,
                   DispatchMode mode, bool fuse, std::uint64_t fuel) {
  ExecOptions exec;
  exec.dispatch = mode;
  exec.fuse = fuse;
  exec.fuel = fuel;
  EventLog log;
  taint::TaintEngine engine(program);
  Interpreter interp(program, ByteView(input), exec);
  interp.AddObserver(&log);
  interp.AddObserver(&engine);
  RunCapture cap;
  cap.result = interp.Run();
  cap.events = std::move(log.lines);
  // Sample taint at every address a store touched.
  std::vector<std::uint64_t> addrs;
  for (const std::string& line : cap.events) {
    if (line.rfind("instr", 0) == 0 &&
        line.find("op=store") != std::string::npos) {
      const std::size_t at = line.find("eff=");
      addrs.push_back(std::strtoull(line.c_str() + at + 4, nullptr, 10));
    }
  }
  for (const std::uint64_t a : addrs) {
    const taint::TaintSet t = engine.MemTaint(a, 1);
    std::string s = std::to_string(a) + ":";
    for (const std::uint32_t label : t) s += " " + std::to_string(label);
    cap.taint.push_back(std::move(s));
  }
  return cap;
}

void ExpectSameResult(const ExecResult& a, const ExecResult& b,
                      const char* what) {
  EXPECT_EQ(a.trap, b.trap) << what;
  EXPECT_EQ(a.return_value, b.return_value) << what;
  EXPECT_EQ(a.instructions, b.instructions) << what;
  EXPECT_EQ(a.fault_addr, b.fault_addr) << what;
  EXPECT_EQ(a.trap_message, b.trap_message) << what;
  ASSERT_EQ(a.backtrace.size(), b.backtrace.size()) << what;
  for (std::size_t i = 0; i < a.backtrace.size(); ++i) {
    EXPECT_EQ(a.backtrace[i].fn, b.backtrace[i].fn) << what << " frame " << i;
    EXPECT_EQ(a.backtrace[i].block, b.backtrace[i].block)
        << what << " frame " << i;
    EXPECT_EQ(a.backtrace[i].ip, b.backtrace[i].ip) << what << " frame " << i;
  }
}

/// Runs under all three configurations and asserts every observable
/// matches. Returns the switch-backend result for further assertions.
ExecResult ExpectBackendsAgree(const Program& program, const Bytes& input,
                               std::uint64_t fuel = 1'000'000) {
  const RunCapture sw = Capture(program, input, DispatchMode::kSwitch,
                                /*fuse=*/false, fuel);
  const RunCapture th = Capture(program, input, DispatchMode::kThreaded,
                                /*fuse=*/false, fuel);
  const RunCapture fu = Capture(program, input, DispatchMode::kThreaded,
                                /*fuse=*/true, fuel);
  ExpectSameResult(sw.result, th.result, "switch vs threaded");
  ExpectSameResult(sw.result, fu.result, "switch vs fused");
  EXPECT_EQ(sw.events, th.events) << "event stream: switch vs threaded";
  EXPECT_EQ(sw.events, fu.events) << "event stream: switch vs fused";
  EXPECT_EQ(sw.taint, th.taint) << "taint: switch vs threaded";
  EXPECT_EQ(sw.taint, fu.taint) << "taint: switch vs fused";
  return sw.result;
}

// -- Hand-built trap/shape programs -------------------------------------------

TEST(BackendIdentity, FusibleLoopRunsToCompletion) {
  const Program p = Assemble(
      "  func main()\n"
      "  L0:\n"
      "    movi %i, 0\n"
      "    movi %n, 1000\n"
      "    movi %acc, 0\n"
      "    jmp L1\n"
      "  L1:\n"
      "    movi %k, 7\n"
      "    add %acc, %acc, %k\n"
      "    movi %m, 3\n"
      "    mul %acc, %acc, %m\n"
      "    addi %i, %i, 1\n"
      "    cmpltu %c, %i, %n\n"
      "    br %c, L1, L2\n"
      "  L2:\n"
      "    ret %acc\n");
  const ExecResult r = ExpectBackendsAgree(p, {});
  EXPECT_EQ(r.trap, TrapKind::kNone);
}

TEST(BackendIdentity, OutOfBoundsTrapMidFusedPair) {
  // The addi+load pair fuses; the load (the *last* constituent) traps.
  // Fault address, backtrace, and retired-instruction count must match
  // the switch backend exactly.
  const Program p = Assemble(
      "  func main()\n"
      "    movi %n, 16\n"
      "    alloc %buf, %n\n"
      "    addi %ptr, %buf, 12\n"
      "    load.8 %v, %ptr, 0\n"
      "    ret %v\n");
  const ExecResult r = ExpectBackendsAgree(p, {});
  EXPECT_EQ(r.trap, TrapKind::kOutOfBounds);
  EXPECT_FALSE(r.backtrace.empty());
}

TEST(BackendIdentity, DivByZeroInsideMovImmAluPair) {
  // movi feeds the divisor register: the fused movi+divu handler must
  // trap identically to two discrete steps.
  const Program p = Assemble(
      "  func main()\n"
      "    movi %a, 100\n"
      "    movi %z, 0\n"
      "    divu %q, %a, %z\n"
      "    ret %q\n");
  const ExecResult r = ExpectBackendsAgree(p, {});
  EXPECT_EQ(r.trap, TrapKind::kDivByZero);
}

TEST(BackendIdentity, AssertFailureAndNullDeref) {
  const Program assert_p = Assemble(
      "  func main()\n"
      "    movi %x, 0\n"
      "    assert %x\n"
      "    ret %x\n");
  EXPECT_EQ(ExpectBackendsAgree(assert_p, {}).trap, TrapKind::kAbort);

  const Program null_p = Assemble(
      "  func main()\n"
      "    movi %p, 8\n"
      "    load.4 %v, %p, 0\n"
      "    ret %v\n");
  EXPECT_EQ(ExpectBackendsAgree(null_p, {}).trap, TrapKind::kNullDeref);
}

TEST(BackendIdentity, StackOverflowBacktraceMatches) {
  const Program p = Assemble(
      "  func rec(d)\n"
      "    addi %d, %d, 1\n"
      "    call %r, rec(%d)\n"
      "    ret %r\n"
      "  func main()\n"
      "    movi %d, 0\n"
      "    call %r, rec(%d)\n"
      "    ret %r\n");
  const ExecResult r = ExpectBackendsAgree(p, {});
  EXPECT_EQ(r.trap, TrapKind::kStackOverflow);
}

TEST(BackendIdentity, CallBetweenFusiblePairsResumesCorrectly) {
  // The call splits a block whose decoded form has fused entries on both
  // sides; returning must resume at the correct original ip even though
  // that ip sits inside the decoded entry array.
  const Program p = Assemble(
      "  func half(x)\n"
      "    movi %two, 2\n"
      "    divu %r, %x, %two\n"
      "    ret %r\n"
      "  func main()\n"
      "    movi %a, 40\n"
      "    add %s, %a, %a\n"
      "    call %h, half(%s)\n"
      "    movi %b, 5\n"
      "    add %out, %h, %b\n"
      "    ret %out\n");
  const ExecResult r = ExpectBackendsAgree(p, {});
  EXPECT_EQ(r.trap, TrapKind::kNone);
  EXPECT_EQ(r.return_value, 45u);
}

TEST(BackendIdentity, FileReadAndTaintFlowThroughFusedLoop) {
  const Program p = Assemble(
      "  func main()\n"
      "  L0:\n"
      "    movi %n, 4\n"
      "    alloc %buf, %n\n"
      "    read %got, %buf, %n\n"
      "    movi %i, 0\n"
      "    movi %acc, 0\n"
      "    jmp L1\n"
      "  L1:\n"
      "    load.1 %v, %buf, 0\n"
      "    movi %k, 13\n"
      "    mul %v, %v, %k\n"
      "    store.1 %v, %buf, 1\n"
      "    addi %i, %i, 1\n"
      "    cmpltu %c, %i, %n\n"
      "    br %c, L1, L2\n"
      "  L2:\n"
      "    ret %acc\n");
  const Bytes input = {0x11, 0x22, 0x33, 0x44};
  EXPECT_EQ(ExpectBackendsAgree(p, input).trap, TrapKind::kNone);
}

// -- Fuel exactness ------------------------------------------------------------

TEST(FuelExactness, BudgetLandsMidFusedEntryAtEveryOffset) {
  // 6 instructions + terminator per iteration, fused into pairs/triples.
  // Sweeping fuel over two full iterations plus the preamble forces the
  // budget boundary onto every possible position inside fused entries;
  // the threaded backend must stop after exactly `fuel` instructions,
  // matching the switch backend's count and trap.
  const Program p = Assemble(
      "  func main()\n"
      "  L0:\n"
      "    movi %i, 0\n"
      "    movi %n, 100000\n"
      "    jmp L1\n"
      "  L1:\n"
      "    movi %k, 5\n"
      "    add %acc, %acc, %k\n"
      "    movi %m, 9\n"
      "    xor %acc, %acc, %m\n"
      "    addi %i, %i, 1\n"
      "    cmpltu %c, %i, %n\n"
      "    br %c, L1, L2\n"
      "  L2:\n"
      "    ret %acc\n");
  for (std::uint64_t fuel = 1; fuel <= 20; ++fuel) {
    const ExecResult r = ExpectBackendsAgree(p, {}, fuel);
    EXPECT_EQ(r.trap, TrapKind::kFuelExhausted) << "fuel=" << fuel;
    EXPECT_EQ(r.instructions, fuel) << "fuel=" << fuel;
  }
  // Around the interrupt-check stride boundary.
  for (const std::uint64_t fuel :
       {kInterpCheckStride - 1, kInterpCheckStride, kInterpCheckStride + 1,
        2 * kInterpCheckStride + 3}) {
    const ExecResult r = ExpectBackendsAgree(p, {}, fuel);
    EXPECT_EQ(r.trap, TrapKind::kFuelExhausted) << "fuel=" << fuel;
    EXPECT_EQ(r.instructions, fuel) << "fuel=" << fuel;
  }
}

// -- Strided deadline bound ----------------------------------------------------

class FlagRaiser : public ExecutionObserver {
 public:
  FlagRaiser(std::atomic<bool>* flag, std::uint64_t at) : flag_(flag),
                                                          at_(at) {}
  void OnInstr(FuncId, BlockId, std::size_t, const Instr&, std::uint64_t,
               std::uint64_t) override {
    if (++seen_ == at_) flag_->store(true, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool>* flag_;
  std::uint64_t at_;
  std::uint64_t seen_ = 0;
};

void ExpectDeadlineWithinStride(DispatchMode mode, bool fuse) {
  const Program p = Assemble(
      "  func main()\n"
      "  L0:\n"
      "    movi %i, 0\n"
      "    jmp L1\n"
      "  L1:\n"
      "    addi %i, %i, 1\n"
      "    movi %k, 1\n"
      "    add %j, %i, %k\n"
      "    jmp L1\n");
  // Raise the kill flag at a retired-instruction count that is NOT a
  // checkpoint; the backend must still observe it within one stride.
  const std::uint64_t raise_at = kInterpCheckStride + 37;
  std::atomic<bool> flag{false};
  FlagRaiser raiser(&flag, raise_at);
  ExecOptions exec;
  exec.dispatch = mode;
  exec.fuse = fuse;
  exec.fuel = 1'000'000;  // far beyond the expected stop point
  exec.cancel = support::CancelToken(support::Deadline::Never(), &flag);
  Interpreter interp(p, {}, exec);
  interp.AddObserver(&raiser);
  const ExecResult r = interp.Run();
  EXPECT_EQ(r.trap, TrapKind::kDeadline);
  EXPECT_GE(r.instructions, raise_at);
  EXPECT_LE(r.instructions, raise_at + kInterpCheckStride)
      << "kDeadline must fire within one check stride of the flag";
}

TEST(DeadlineStride, SwitchBackendStopsWithinStride) {
  ExpectDeadlineWithinStride(DispatchMode::kSwitch, false);
}

TEST(DeadlineStride, ThreadedBackendStopsWithinStride) {
  ExpectDeadlineWithinStride(DispatchMode::kThreaded, false);
}

TEST(DeadlineStride, FusedBackendStopsWithinStride) {
  ExpectDeadlineWithinStride(DispatchMode::kThreaded, true);
}

TEST(DeadlineStride, PreTrippedTokenStopsBeforeTheFirstInstruction) {
  const Program p = Assemble(
      "  func main()\n"
      "  L0:\n"
      "    jmp L0\n");
  for (const DispatchMode mode :
       {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
    std::atomic<bool> flag{true};
    ExecOptions exec;
    exec.dispatch = mode;
    exec.cancel = support::CancelToken(support::Deadline::Never(), &flag);
    const ExecResult r = Interpreter(p, {}, exec).Run();
    EXPECT_EQ(r.trap, TrapKind::kDeadline);
    EXPECT_EQ(r.instructions, 0u);
  }
}

// -- Fusion coverage -----------------------------------------------------------

TEST(Fusion, PeepholeFusesTheTargetedShapes) {
  const Program p = Assemble(
      "  func main()\n"
      "  L0:\n"
      "    movi %i, 0\n"
      "    movi %n, 10\n"
      "    jmp L1\n"
      "  L1:\n"
      "    movi %k, 3\n"          // movi+alu pair (b or c operand)
      "    add %acc, %acc, %k\n"
      "    addi %i, %i, 1\n"      // feeds the triple below
      "    movi %lim, 10\n"       // movi+cmp+br triple
      "    cmpltu %c, %i, %lim\n"
      "    br %c, L1, L2\n"
      "  L2:\n"
      "    ret %acc\n");
  const DecodedProgram decoded = DecodeProgram(p, /*fuse=*/true);
  EXPECT_GE(decoded.stats.pairs, 1u);
  EXPECT_GE(decoded.stats.triples, 1u);
  std::uint64_t per_kind_sum = 0;
  for (std::size_t i = 0; i < kFusedOpCount; ++i) {
    per_kind_sum += decoded.stats.per_kind[i];
  }
  EXPECT_EQ(per_kind_sum, decoded.stats.pairs + decoded.stats.triples);

  // The unfused decode of the same program has only singles.
  const DecodedProgram plain = DecodeProgram(p, /*fuse=*/false);
  EXPECT_EQ(plain.stats.pairs, 0u);
  EXPECT_EQ(plain.stats.triples, 0u);
}

TEST(Fusion, EntryOfIpMapsEveryOriginalIp) {
  const Program p = Assemble(
      "  func main()\n"
      "    movi %a, 1\n"
      "    movi %b, 2\n"
      "    add %c, %a, %b\n"
      "    ret %c\n");
  const DecodedProgram decoded = DecodeProgram(p, /*fuse=*/true);
  const Block& block = p.functions[0].blocks[0];
  const DecodedBlock& dblock = decoded.fns[0].blocks[0];
  // One slot per original ip plus one for the terminator position.
  ASSERT_EQ(dblock.entry_of_ip.size(), block.instrs.size() + 1);
  for (const std::uint32_t entry : dblock.entry_of_ip) {
    EXPECT_LT(entry, dblock.code.size());
  }
  // The terminator position maps to the terminator-carrying entry.
  EXPECT_NE(dblock.code[dblock.entry_of_ip.back()].term, nullptr);
}

// -- Randomized program family -------------------------------------------------

/// Generates a bounded loop over a small buffer: fusible movi+alu
/// churn, addi+load/store traffic with occasionally out-of-range
/// offsets (so some seeds trap mid-loop), input reads, and a helper
/// call — the shapes the fusion pass and its resume paths must handle.
Program RandomProgram(std::uint64_t seed) {
  Rng rng(seed);
  const unsigned iters = 1 + rng.Below(40);
  const unsigned body_ops = 3 + rng.Below(10);
  static const char* kAlu[] = {"add", "sub", "mul", "and",
                               "or",  "xor", "shl", "shr"};
  std::string src =
      "  func helper(x)\n"
      "    movi %k, 3\n"
      "    mul %r, %x, %k\n"
      "    ret %r\n"
      "  func main()\n"
      "  L0:\n"
      "    movi %n, 32\n"
      "    alloc %buf, %n\n"
      "    movi %want, 8\n"
      "    read %got, %buf, %want\n"
      "    movi %i, 0\n"
      "    movi %lim, " + std::to_string(iters) + "\n"
      "    movi %v0, 1\n"
      "    movi %v1, 2\n"
      "    movi %v2, 3\n"
      "    jmp L1\n"
      "  L1:\n";
  for (unsigned i = 0; i < body_ops; ++i) {
    const unsigned kind = rng.Below(8);
    const std::string a = "%v" + std::to_string(rng.Below(3));
    const std::string b = "%v" + std::to_string(rng.Below(3));
    if (kind < 4) {
      // Fusible movi+alu pair.
      src += "    movi %t, " + std::to_string(rng.Below(64)) + "\n";
      src += std::string("    ") + kAlu[rng.Below(std::size(kAlu))] + " " +
             a + ", " + b + ", %t\n";
    } else if (kind < 6) {
      // addi+load (fusible); rarely past the end of the 32-byte buffer.
      const unsigned off = rng.Chance(1, 12) ? 30 : rng.Below(16);
      src += "    addi %p, %buf, " + std::to_string(off) + "\n";
      src += "    load.4 " + a + ", %p, 0\n";
    } else if (kind < 7) {
      src += "    store.2 " + a + ", %buf, " +
             std::to_string(rng.Below(12)) + "\n";
    } else {
      src += "    call " + a + ", helper(" + b + ")\n";
    }
  }
  src +=
      "    addi %i, %i, 1\n"
      "    cmpltu %c, %i, %lim\n"
      "    br %c, L1, L2\n"
      "  L2:\n"
      "    ret %v0\n";
  return Assemble(src);
}

class RandomizedIdentity : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedIdentity, AllBackendsObserveTheSameExecution) {
  const std::uint64_t seed = 7'000 + GetParam();
  const Program p = RandomProgram(seed);
  Rng rng(seed * 31);
  const Bytes input = rng.RandomBytes(8);
  ExpectBackendsAgree(p, input, /*fuel=*/200'000);
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, RandomizedIdentity,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace octopocs::vm
