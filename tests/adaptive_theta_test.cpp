// Adaptive loop cap (the paper's §III-D future-work item, implemented
// as PipelineOptions::adaptive_theta).
#include <gtest/gtest.h>

#include "core/octopocs.h"
#include "vm/asm.h"

namespace octopocs::core {
namespace {

// Shared ℓ whose crash needs a long symbolic ramp in T: T only calls ep
// after consuming `depth` input bytes, each of which must equal 0xAA
// (every iteration is a symbolic loop state).
constexpr const char* kShared = R"(
  func vuln(mode)
    movi %one, 1
    alloc %rec, %one
    read %got, %rec, %one
    load.1 %c, %rec, 0
    movi %lim, 4
    alloc %tbl, %lim
    add %p, %tbl, %c
    store.1 %one, %p, 0      ; OOB when c >= 4
    ret %c
)";

constexpr const char* kSMain = R"(
  func main()
    movi %zero, 0
    call %v, vuln(%zero)
    ret %v
)";

// T demands 40 magic bytes before reaching ep — beyond a small θ.
constexpr const char* kTMain = R"(
  func main()
    movi %one, 1
    alloc %buf, %one
    movi %i, 0
    movi %goal, 40
  ramp:
    cmpltu %more, %i, %goal
    br %more, body, go
  body:
    read %got, %buf, %one
    load.1 %c, %buf, 0
    movi %aa, 0xaa
    cmpeq %ok, %c, %aa
    assert %ok
    addi %i, %i, 1
    jmp ramp
  go:
    movi %zero, 0
    call %v, vuln(%zero)
    ret %v
)";

TEST(AdaptiveTheta, SmallCapAloneCannotDecide) {
  const vm::Program s = vm::AssembleParts({kShared, kSMain});
  const vm::Program t = vm::AssembleParts({kShared, kTMain});
  const Bytes poc{0xF7};

  PipelineOptions opts;
  opts.symex.theta = 8;  // far below the 40 iterations T demands
  Octopocs fixed(s, t, {"vuln"}, poc, opts);
  const auto fixed_report = fixed.Verify();
  // Without adaptation this is the paper's dangerous wrong verdict.
  EXPECT_EQ(fixed_report.verdict, Verdict::kNotTriggerable);
}

TEST(AdaptiveTheta, RetriesUntilTheRampFits) {
  const vm::Program s = vm::AssembleParts({kShared, kSMain});
  const vm::Program t = vm::AssembleParts({kShared, kTMain});
  const Bytes poc{0xF7};

  PipelineOptions opts;
  opts.symex.theta = 8;
  opts.adaptive_theta = true;  // 8 → 16 → 32 → 64 fits the 40-ramp
  Octopocs adaptive(s, t, {"vuln"}, poc, opts);
  const auto report = adaptive.Verify();
  EXPECT_EQ(report.verdict, Verdict::kTriggered) << report.detail;
  // The generated PoC carries the 40-byte magic ramp + the primitive.
  ASSERT_EQ(report.reformed_poc.size(), 41u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(report.reformed_poc[i], 0xAA);
  EXPECT_EQ(report.reformed_poc[40], 0xF7);
}

TEST(AdaptiveTheta, CeilingDegradesToFailureNotWrongVerdict) {
  const vm::Program s = vm::AssembleParts({kShared, kSMain});
  const vm::Program t = vm::AssembleParts({kShared, kTMain});
  const Bytes poc{0xF7};

  PipelineOptions opts;
  opts.symex.theta = 2;
  opts.adaptive_theta = true;
  opts.adaptive_theta_max = 16;  // ceiling below the 40-ramp
  Octopocs capped(s, t, {"vuln"}, poc, opts);
  const auto report = capped.Verify();
  EXPECT_EQ(report.verdict, Verdict::kFailure);
  EXPECT_NE(report.detail.find("loop cap"), std::string::npos);
}

TEST(AdaptiveTheta, DoesNotDisturbGenuineTypeIII) {
  // A genuinely untriggerable pair must stay NotTriggerable with
  // adaptation on (no loop-dead states are involved in its proof).
  const corpus::Pair pair = corpus::BuildPair(10);
  PipelineOptions opts;
  opts.adaptive_theta = true;
  const auto report = VerifyPair(pair, opts);
  EXPECT_EQ(report.verdict, Verdict::kNotTriggerable);
}

}  // namespace
}  // namespace octopocs::core
