// Persistent worker pool (DESIGN.md §13): the PersistentProcess pipe
// primitive and the WorkerPool retry/respawn/quarantine loop, driven by
// /bin/sh shim workers so every outcome is reachable without a
// cooperating octopocs binary. The pooled-vs-one-shot verdict identity
// on the real corpus is covered by the CI pooled-isolation leg.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/stat.h>
#endif

#include "core/report_io.h"
#include "core/supervisor.h"
#include "corpus/pairs.h"
#include "support/subprocess.h"

namespace octopocs::core {
namespace {

#ifndef _WIN32

using support::PersistentProcess;
using support::SubprocessLimits;
using support::SubprocessResult;
using support::SubprocessStatus;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "octopocs_pool_" + name;
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out << text;
}

/// Writes an executable shim. The pool invokes it as
/// `script pool-worker <flags...>`; the scripts ignore their argv.
std::string WriteWorkerScript(const std::string& name,
                              const std::string& body) {
  const std::string path = TempPath(name + ".sh");
  WriteText(path, "#!/bin/sh\n" + body);
  ::chmod(path.c_str(), 0755);
  return path;
}

/// A report with distinctive values, so a pool that fabricated or
/// mixed up reports could not pass.
VerificationReport CannedReport() {
  VerificationReport r;
  r.verdict = Verdict::kTriggered;
  r.type = ResultType::kTypeII;
  r.detail = "pooled canned report";
  r.ep_name = "parse_header";
  r.bunch_count = 3;
  return r;
}

// -- PersistentProcess: the framed-pipe primitive ------------------------------

/// An echo server: replies to every request line with a two-line frame,
/// exits cleanly on "QUIT".
std::string EchoServer() {
  return WriteWorkerScript("echo",
                           "while read line; do\n"
                           "  if [ \"$line\" = QUIT ]; then exit 0; fi\n"
                           "  echo \"got $line\"\n"
                           "  echo FRAME-END\n"
                           "done\n");
}

TEST(PersistentProcessTest, RequestResponseAcrossManyRoundTrips) {
  PersistentProcess proc;
  std::string error;
  ASSERT_TRUE(proc.Spawn({EchoServer(), "pool-worker"}, {}, &error)) << error;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(proc.WriteLine("req-" + std::to_string(i)));
    std::string frame;
    ASSERT_EQ(proc.ReadFrame("FRAME-END", 5'000, nullptr, &frame),
              PersistentProcess::ReadStatus::kOk)
        << "round " << i;
    EXPECT_EQ(frame, "got req-" + std::to_string(i) + "\nFRAME-END\n");
  }
  ASSERT_TRUE(proc.WriteLine("QUIT"));
  const SubprocessResult r = proc.Reap();
  EXPECT_EQ(r.status, SubprocessStatus::kExited);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_FALSE(proc.alive());
}

TEST(PersistentProcessTest, BytesPastTheSentinelStayBufferedForTheNextFrame) {
  // One request triggers two complete frames in a single burst; the
  // second must be returned by the *next* ReadFrame, not lost.
  const std::string script = WriteWorkerScript(
      "burst",
      "read line\n"
      "printf 'alpha\\nFRAME-END\\nbeta\\nFRAME-END\\n'\n"
      "read line2\n");
  PersistentProcess proc;
  std::string error;
  ASSERT_TRUE(proc.Spawn({script, "pool-worker"}, {}, &error)) << error;
  ASSERT_TRUE(proc.WriteLine("go"));
  std::string frame;
  ASSERT_EQ(proc.ReadFrame("FRAME-END", 5'000, nullptr, &frame),
            PersistentProcess::ReadStatus::kOk);
  EXPECT_EQ(frame, "alpha\nFRAME-END\n");
  ASSERT_EQ(proc.ReadFrame("FRAME-END", 5'000, nullptr, &frame),
            PersistentProcess::ReadStatus::kOk);
  EXPECT_EQ(frame, "beta\nFRAME-END\n");
}

TEST(PersistentProcessTest, SentinelInsideALineDoesNotEndTheFrame) {
  // The sentinel must match a whole line: a report whose payload
  // *contains* the sentinel text mid-line keeps the frame open.
  const std::string script = WriteWorkerScript(
      "tricky",
      "read line\n"
      "printf 'prefix FRAME-END suffix\\nFRAME-END\\n'\n"
      "read line2\n");
  PersistentProcess proc;
  std::string error;
  ASSERT_TRUE(proc.Spawn({script, "pool-worker"}, {}, &error)) << error;
  ASSERT_TRUE(proc.WriteLine("go"));
  std::string frame;
  ASSERT_EQ(proc.ReadFrame("FRAME-END", 5'000, nullptr, &frame),
            PersistentProcess::ReadStatus::kOk);
  EXPECT_EQ(frame, "prefix FRAME-END suffix\nFRAME-END\n");
}

TEST(PersistentProcessTest, SilentWorkerTimesOut) {
  const std::string script =
      WriteWorkerScript("silent", "read line\nsleep 30\n");
  PersistentProcess proc;
  std::string error;
  ASSERT_TRUE(proc.Spawn({script, "pool-worker"}, {}, &error)) << error;
  ASSERT_TRUE(proc.WriteLine("go"));
  std::string frame;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(proc.ReadFrame("FRAME-END", 100, nullptr, &frame),
            PersistentProcess::ReadStatus::kTimeout);
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            10.0);
  const SubprocessResult r = proc.Kill();
  EXPECT_EQ(r.status, SubprocessStatus::kSignaled);
  EXPECT_FALSE(proc.alive());
}

TEST(PersistentProcessTest, DyingWorkerYieldsEofThenItsRealWaitStatus) {
  const std::string script =
      WriteWorkerScript("dier", "read line\nkill -SEGV $$\n");
  PersistentProcess proc;
  std::string error;
  ASSERT_TRUE(proc.Spawn({script, "pool-worker"}, {}, &error)) << error;
  ASSERT_TRUE(proc.WriteLine("go"));
  std::string frame;
  EXPECT_EQ(proc.ReadFrame("FRAME-END", 5'000, nullptr, &frame),
            PersistentProcess::ReadStatus::kEof);
  const SubprocessResult r = proc.Reap();
  EXPECT_EQ(r.status, SubprocessStatus::kSignaled);
  EXPECT_EQ(r.term_signal, SIGSEGV);
}

TEST(PersistentProcessTest, InterruptFlagUnblocksTheRead) {
  const std::string script =
      WriteWorkerScript("hang", "read line\nsleep 30\n");
  PersistentProcess proc;
  std::string error;
  ASSERT_TRUE(proc.Spawn({script, "pool-worker"}, {}, &error)) << error;
  ASSERT_TRUE(proc.WriteLine("go"));
  std::atomic<int> interrupt{0};
  std::thread trip([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    interrupt.store(1);
  });
  std::string frame;
  EXPECT_EQ(proc.ReadFrame("FRAME-END", 30'000, &interrupt, &frame),
            PersistentProcess::ReadStatus::kInterrupted);
  trip.join();
  proc.Kill();
}

// -- WorkerPool: pooled pair verification --------------------------------------

corpus::Pair TinyPair() { return corpus::BuildPair(1); }

/// A well-behaved pool worker: serves the canned report for every
/// OCTO-PAIR request, exits on OCTO-EXIT.
std::string ServingScript(const std::string& report_path) {
  return "while read line; do\n"
         "  if [ \"$line\" = OCTO-EXIT ]; then exit 0; fi\n"
         "  cat " +
         report_path +
         "\n"
         "done\n";
}

TEST(WorkerPoolTest, OneSpawnServesManyPairs) {
  const std::string report_path = TempPath("serve_report.txt");
  WriteText(report_path, MarshalWorkerReport(CannedReport()));
  IsolationOptions iso;
  iso.worker_binary =
      WriteWorkerScript("serve", ServingScript(report_path));
  WorkerPool pool(iso, /*size=*/1);
  for (int i = 0; i < 5; ++i) {
    const SupervisedResult r = pool.RunPair(TinyPair(), nullptr);
    EXPECT_EQ(r.last_outcome, ChildOutcome::kCleanReport) << "pair " << i;
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_FALSE(r.quarantined);
    EXPECT_EQ(r.report.verdict, Verdict::kTriggered);
    EXPECT_EQ(r.report.detail, "pooled canned report");
  }
  const WorkerPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.spawns, 1u) << "the worker must be reused, not respawned";
  EXPECT_EQ(stats.respawns, 0u);
  EXPECT_EQ(stats.dispatches, 5u);
}

TEST(WorkerPoolTest, CrashedWorkerIsRespawnedAndThePairRetried) {
  const std::string report_path = TempPath("respawn_report.txt");
  const std::string stamp = TempPath("respawn_stamp");
  std::remove(stamp.c_str());
  WriteText(report_path, MarshalWorkerReport(CannedReport()));
  // First incarnation crashes on its first request; the respawned one
  // serves cleanly.
  IsolationOptions iso;
  iso.worker_binary = WriteWorkerScript(
      "flaky",
      "while read line; do\n"
      "  if [ \"$line\" = OCTO-EXIT ]; then exit 0; fi\n"
      "  if [ ! -e " + stamp + " ]; then : > " + stamp +
          "; kill -SEGV $$; fi\n"
      "  cat " + report_path + "\n"
      "done\n");
  iso.max_retries = 2;
  WorkerPool pool(iso, /*size=*/1);
  const SupervisedResult r = pool.RunPair(TinyPair(), nullptr);
  EXPECT_EQ(r.last_outcome, ChildOutcome::kCleanReport);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_FALSE(r.quarantined);
  EXPECT_EQ(r.report.detail, "pooled canned report");
  const WorkerPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.spawns, 2u);
  EXPECT_EQ(stats.respawns, 1u);
  EXPECT_EQ(stats.dispatches, 2u);
}

TEST(WorkerPoolTest, PersistentCrasherIsQuarantined) {
  IsolationOptions iso;
  iso.worker_binary = WriteWorkerScript(
      "crasher", "read line\nkill -SEGV $$\n");
  iso.max_retries = 1;
  WorkerPool pool(iso, /*size=*/1);
  const SupervisedResult r = pool.RunPair(TinyPair(), nullptr);
  EXPECT_TRUE(r.quarantined);
  EXPECT_EQ(r.attempts, 2u);  // original + one retry
  EXPECT_EQ(r.last_outcome, ChildOutcome::kCrashSignal);
  EXPECT_EQ(r.report.verdict, Verdict::kFailure);
  EXPECT_TRUE(r.report.exception_contained);
  EXPECT_NE(r.report.detail.find("quarantined"), std::string::npos);
  EXPECT_EQ(pool.stats().respawns, 1u);
}

TEST(WorkerPoolTest, WedgedWorkerIsKilledAtTheDeadlineWithoutRetry) {
  IsolationOptions iso;
  iso.worker_binary =
      WriteWorkerScript("wedged", "read line\nsleep 30\n");
  iso.max_retries = 3;
  iso.deadline_ms = 100;
  WorkerPool pool(iso, /*size=*/1);
  const auto start = std::chrono::steady_clock::now();
  const SupervisedResult r = pool.RunPair(TinyPair(), nullptr);
  EXPECT_EQ(r.last_outcome, ChildOutcome::kTimeout);
  EXPECT_EQ(r.attempts, 1u);  // the cap is deterministic: never retried
  EXPECT_TRUE(r.report.deadline_expired);
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            10.0);
}

TEST(WorkerPoolTest, InterruptDrainsWithoutDispatching) {
  IsolationOptions iso;
  iso.worker_binary = WriteWorkerScript("never", "exit 0\n");
  WorkerPool pool(iso, /*size=*/1);
  const std::atomic<int> interrupt{1};
  const SupervisedResult r = pool.RunPair(TinyPair(), &interrupt);
  EXPECT_TRUE(r.interrupted);
  EXPECT_EQ(r.attempts, 0u);
  EXPECT_EQ(pool.stats().dispatches, 0u);
  EXPECT_EQ(pool.stats().spawns, 0u) << "workers spawn lazily";
}

TEST(WorkerPoolTest, ConcurrentCallersShareTheFixedWorkerFleet) {
  const std::string report_path = TempPath("mt_report.txt");
  WriteText(report_path, MarshalWorkerReport(CannedReport()));
  IsolationOptions iso;
  iso.worker_binary = WriteWorkerScript("mt", ServingScript(report_path));
  WorkerPool pool(iso, /*size=*/2);
  std::atomic<int> clean{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        const SupervisedResult r = pool.RunPair(TinyPair(), nullptr);
        if (r.last_outcome == ChildOutcome::kCleanReport) ++clean;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(clean.load(), 12);
  const WorkerPool::Stats stats = pool.stats();
  EXPECT_LE(stats.spawns, 2u) << "never more workers than the pool size";
  EXPECT_EQ(stats.respawns, 0u);
  EXPECT_EQ(stats.dispatches, 12u);
}

#endif  // !_WIN32

}  // namespace
}  // namespace octopocs::core
