// Exact-cycle fast-forward identity suite.
//
// ExecOptions::cycle_skip lets the interpreter detect that a hung
// program's complete machine state repeats with period p and jump the
// instruction counter forward whole periods instead of re-executing
// them. The contract is byte-identity: trap, trap message, instruction
// count, backtrace, and every observer's final state must equal the
// unskipped run's — only wall-clock may differ. These tests pin that
// contract on hung loops (the CWE-835 shape that motivated the skip),
// on terminating programs (where the skip must be a no-op), and on the
// safety valve that disables skipping when an attached observer cannot
// snapshot its state.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/bytes.h"
#include "taint/taint_engine.h"
#include "vm/asm.h"
#include "vm/interp.h"

namespace octopocs::vm {
namespace {

ExecResult Execute(const Program& program, const Bytes& input, bool cycle_skip,
               DispatchMode mode, std::uint64_t fuel,
               taint::TaintEngine* taint = nullptr) {
  ExecOptions exec;
  exec.fuel = fuel;
  exec.dispatch = mode;
  exec.cycle_skip = cycle_skip;
  Interpreter interp(program, ByteView(input), exec);
  if (taint != nullptr) interp.AddObserver(taint);
  return interp.Run();
}

void ExpectSameResult(const ExecResult& a, const ExecResult& b,
                      const char* what) {
  EXPECT_EQ(a.trap, b.trap) << what;
  EXPECT_EQ(a.return_value, b.return_value) << what;
  EXPECT_EQ(a.instructions, b.instructions) << what;
  EXPECT_EQ(a.fault_addr, b.fault_addr) << what;
  EXPECT_EQ(a.trap_message, b.trap_message) << what;
  ASSERT_EQ(a.backtrace.size(), b.backtrace.size()) << what;
  for (std::size_t i = 0; i < a.backtrace.size(); ++i) {
    EXPECT_EQ(a.backtrace[i].fn, b.backtrace[i].fn) << what << " " << i;
    EXPECT_EQ(a.backtrace[i].block, b.backtrace[i].block) << what << " " << i;
    EXPECT_EQ(a.backtrace[i].ip, b.backtrace[i].ip) << what << " " << i;
  }
}

/// A state-stationary hang: after the prologue the loop body recomputes
/// the same register values forever, so the machine state at the loop
/// head is literally periodic — the shape the fast-forward detects.
Program HungLoop() {
  return Assemble(
      "  func main()\n"
      "  L0:\n"
      "    movi %a, 1\n"
      "    jmp L1\n"
      "  L1:\n"
      "    movi %b, 7\n"
      "    add %a, %b, %b\n"
      "    movi %a, 1\n"
      "    jmp L1\n");
  // unreachable ret: the loop never exits
}

TEST(CycleSkip, HungLoopFuelTrapIsByteIdentical) {
  const Program p = HungLoop();
  for (const DispatchMode mode :
       {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
    const ExecResult off = Execute(p, {}, /*cycle_skip=*/false, mode, 200'000);
    const ExecResult on = Execute(p, {}, /*cycle_skip=*/true, mode, 200'000);
    ExpectSameResult(off, on, "skip off vs on");
    EXPECT_EQ(on.trap, TrapKind::kFuelExhausted);
    EXPECT_EQ(on.instructions, 200'000u);
  }
}

TEST(CycleSkip, FuelResidualLandsMidPeriod) {
  // Sweep fuel values around the loop period so the residual after the
  // last whole-period jump lands on every instruction of the body; the
  // retired count and trap must match the unskipped run each time.
  const Program p = HungLoop();
  for (std::uint64_t fuel = 50'000; fuel < 50'012; ++fuel) {
    const ExecResult off =
        Execute(p, {}, false, DispatchMode::kThreaded, fuel);
    const ExecResult on = Execute(p, {}, true, DispatchMode::kThreaded, fuel);
    ExpectSameResult(off, on, "mid-period residual");
    EXPECT_EQ(on.instructions, fuel);
  }
}

TEST(CycleSkip, HungFileReadLoopWithTaintObserverIsIdentical) {
  // A loop that keeps issuing file reads: once the 2-byte PoC is
  // consumed, every further read returns short at EOF and the machine
  // state — including the file position and the taint engine's state,
  // which participates in the snapshot identity — becomes periodic. The
  // engine's final serialized state must match the unskipped run's.
  const Program p = Assemble(
      "  func main()\n"
      "  L0:\n"
      "    movi %n, 16\n"
      "    alloc %buf, %n\n"
      "    jmp L1\n"
      "  L1:\n"
      "    movi %one, 1\n"
      "    read %got, %buf, %one\n"
      "    jmp L1\n");
  const Bytes input = {0x41, 0x42};

  taint::TaintEngine off_engine(p);
  const ExecResult off = Execute(p, input, /*cycle_skip=*/false,
                             DispatchMode::kThreaded, 100'000, &off_engine);
  taint::TaintEngine on_engine(p);
  const ExecResult on = Execute(p, input, /*cycle_skip=*/true,
                            DispatchMode::kThreaded, 100'000, &on_engine);

  ExpectSameResult(off, on, "hung read loop");
  EXPECT_EQ(on.trap, TrapKind::kFuelExhausted);
  EXPECT_EQ(on.instructions, 100'000u);
  std::vector<std::uint8_t> off_state, on_state;
  ASSERT_TRUE(off_engine.SnapshotState(&off_state));
  ASSERT_TRUE(on_engine.SnapshotState(&on_state));
  EXPECT_EQ(on_state, off_state)
      << "taint state diverged between skip off and on";
}

TEST(CycleSkip, TerminatingProgramIsUntouched) {
  const Program p = Assemble(
      "  func main()\n"
      "  L0:\n"
      "    movi %i, 0\n"
      "    movi %n, 5000\n"
      "    movi %acc, 0\n"
      "    jmp L1\n"
      "  L1:\n"
      "    addi %acc, %acc, 3\n"
      "    addi %i, %i, 1\n"
      "    cmpltu %c, %i, %n\n"
      "    br %c, L1, L2\n"
      "  L2:\n"
      "    ret %acc\n");
  const ExecResult off = Execute(p, {}, false, DispatchMode::kThreaded, 100'000);
  const ExecResult on = Execute(p, {}, true, DispatchMode::kThreaded, 100'000);
  ExpectSameResult(off, on, "terminating program");
  EXPECT_EQ(on.trap, TrapKind::kNone);
  EXPECT_EQ(on.return_value, 15'000u);
}

/// An observer that cannot serialize its state (SnapshotState keeps the
/// default false return) but observes every retired instruction. With it
/// attached, the interpreter must refuse to skip — otherwise the
/// observer would miss the fast-forwarded instructions.
class CountingObserver : public ExecutionObserver {
 public:
  void OnInstr(FuncId, BlockId, std::size_t, const Instr&, std::uint64_t,
               std::uint64_t) override {
    ++instrs;
  }
  std::uint64_t instrs = 0;
};

TEST(CycleSkip, SnapshotlessObserverDisablesTheSkip) {
  const Program p = HungLoop();
  const Bytes no_input;
  std::uint64_t counts[2] = {0, 0};
  for (const bool skip : {false, true}) {
    ExecOptions exec;
    exec.fuel = 50'000;
    exec.cycle_skip = skip;
    CountingObserver counter;
    Interpreter interp(p, ByteView(no_input), exec);
    interp.AddObserver(&counter);
    const ExecResult r = interp.Run();
    EXPECT_EQ(r.trap, TrapKind::kFuelExhausted);
    counts[skip ? 1 : 0] = counter.instrs;
  }
  // The observer cannot snapshot, so the skip must disable itself: the
  // observer sees exactly as many retirements as in the honest run —
  // a fast-forward would have cut the count by orders of magnitude.
  EXPECT_EQ(counts[1], counts[0]);
  EXPECT_GT(counts[1], 25'000u);
}

}  // namespace
}  // namespace octopocs::vm
