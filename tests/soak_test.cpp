// In-process soak harness tests (src/gen/soak.h): the batch, chain and
// serve-under-chaos legs run end to end on a small generated corpus with
// every invariant green, the deterministic report serializes
// byte-identically across two same-seed runs, and the gen_seed request
// field survives the serve wire format. The worker/daemon legs need the
// built CLI binary and are exercised by `octopocs soak` in CI instead.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/server.h"
#include "gen/generator.h"
#include "gen/soak.h"

namespace octopocs {
namespace {

std::string MakeWorkdir() {
  char tmpl[] = "/tmp/octo-soak-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  return dir == nullptr ? std::string() : std::string(dir);
}

gen::SoakOptions InProcessOptions(std::uint64_t seed, int pairs) {
  gen::SoakOptions o;
  o.seed = seed;
  o.pairs = pairs;
  o.jobs = 2;
  o.chaos = true;
  o.workdir = MakeWorkdir();
  // The worker and daemon legs need the CLI binary; everything the unit
  // test proves runs in-process.
  o.run_isolated = false;
  o.run_resume = false;
  o.run_rlimit = false;
  o.run_daemon = false;
  return o;
}

TEST(SoakTest, InProcessLegsHoldEveryInvariant) {
  core::SetGenPairLoader(&gen::LoadGeneratedPair);
  const gen::SoakOptions o = InProcessOptions(7, 16);
  ASSERT_FALSE(o.workdir.empty());
  const gen::SoakReport report = gen::RunSoak(o);
  for (const std::string& v : report.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.legs_run, 3);  // batch, chain, serve
  EXPECT_EQ(report.label_matches, 16);
  EXPECT_GE(report.chains_verified, 1);
  EXPECT_EQ(static_cast<int>(report.canonical.size()), 16);
  // The chaos schedule really armed faults while the daemon served.
  EXPECT_GT(report.chaos_faults_armed, 0);
}

TEST(SoakTest, SameSeedReportsSerializeIdentically) {
  core::SetGenPairLoader(&gen::LoadGeneratedPair);
  const gen::SoakReport a = gen::RunSoak(InProcessOptions(11, 12));
  const gen::SoakReport b = gen::RunSoak(InProcessOptions(11, 12));
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  // Chaos timing differs between the runs; the serialized report must
  // not — it carries only the deterministic half.
  EXPECT_EQ(gen::SerializeSoakReport(a), gen::SerializeSoakReport(b));
}

TEST(SoakTest, DisabledLegsAreReportedSkippedNotSilentlyDropped) {
  gen::SoakOptions o;
  o.seed = 3;
  o.pairs = 2;
  o.chaos = false;
  o.run_batch = false;
  o.run_chain = false;
  o.run_isolated = false;
  o.run_resume = false;
  o.run_rlimit = false;
  o.run_serve = false;
  o.run_daemon = false;
  const gen::SoakReport report = gen::RunSoak(o);
  EXPECT_EQ(report.legs_run, 0);
  EXPECT_EQ(report.skipped_legs.size(), 7u);
  EXPECT_TRUE(report.ok());
}

TEST(SoakTest, GenSeedSurvivesServeWireFormat) {
  core::ServeRequest request;
  request.pair = gen::kGenBase + 3;
  request.gen_seed = 42;
  request.fuzz_fallback = true;
  const std::string json = core::SerializeServeRequest(request);
  core::ServeRequest parsed;
  std::string error;
  ASSERT_TRUE(core::ParseServeRequest(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.pair, gen::kGenBase + 3);
  EXPECT_EQ(parsed.gen_seed, 42u);
  EXPECT_TRUE(parsed.fuzz_fallback);
  // gen_seed is opt-in on the wire: a stock request stays byte-identical
  // to the pre-gen protocol.
  core::ServeRequest stock;
  stock.pair = 8;
  EXPECT_EQ(core::SerializeServeRequest(stock).find("gen_seed"),
            std::string::npos);
}

}  // namespace
}  // namespace octopocs
