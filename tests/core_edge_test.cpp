// Core pipeline edge cases and cross-cutting invariants that the Table
// suites exercise only implicitly.
#include <gtest/gtest.h>

#include "core/octopocs.h"
#include "corpus/pairs.h"
#include "vm/asm.h"
#include "vm/disasm.h"

namespace octopocs::core {
namespace {

TEST(CoreEdge, EpAbsentFromTIsTriviallyNotTriggerable) {
  // T does not even contain the shared function: the clone never
  // propagated into this build (e.g. compiled out) — NotTriggerable
  // without running P1 at all... P1 runs, then the name lookup fails.
  const vm::Program s = vm::Assemble(R"(
    func main()
      movi %zero, 0
      call %v, vuln(%zero)
      ret %v
    func vuln(mode)
      movi %one, 1
      alloc %b, %one
      read %got, %b, %one
      load.1 %c, %b, 0
      movi %lim, 4
      alloc %tbl, %lim
      add %p, %tbl, %c
      store.1 %one, %p, 0
      ret %c
  )");
  const vm::Program t = vm::Assemble(R"(
    func main()
      movi %x, 1
      ret %x
  )");
  Octopocs pipeline(s, t, {"vuln"}, Bytes{0xF0});
  const auto report = pipeline.Verify();
  EXPECT_EQ(report.verdict, Verdict::kNotTriggerable);
  EXPECT_NE(report.detail.find("does not exist"), std::string::npos);
}

TEST(CoreEdge, UnknownSharedNamesFailPreprocessing) {
  const corpus::Pair pair = corpus::BuildPair(1);
  Octopocs pipeline(pair.s, pair.t, {"no_such_function"}, pair.poc);
  const auto report = pipeline.Verify();
  EXPECT_EQ(report.verdict, Verdict::kFailure);
}

TEST(CoreEdge, AdaptiveThetaDoesNotDisturbTypeI) {
  const corpus::Pair pair = corpus::BuildPair(5);
  PipelineOptions opts;
  opts.adaptive_theta = true;
  const auto report = VerifyPair(pair, opts);
  EXPECT_EQ(report.verdict, Verdict::kTriggered);
  EXPECT_EQ(report.type, ResultType::kTypeI);
}

TEST(CoreEdge, ReportAccountsEveryPhase) {
  const auto report = VerifyPair(corpus::BuildPair(8));
  EXPECT_GT(report.timings.total_seconds, 0.0);
  EXPECT_GE(report.timings.total_seconds,
            report.timings.preprocess_seconds + report.timings.p1_seconds +
                report.timings.p23_seconds + report.timings.p4_seconds -
                1e-9);
  EXPECT_NE(report.ep_in_s, vm::kInvalidFunc);
  EXPECT_NE(report.ep_in_t, vm::kInvalidFunc);
  EXPECT_FALSE(report.bunch_offsets.empty());
}

TEST(CoreEdge, VerdictNamesAreStable) {
  EXPECT_EQ(VerdictName(Verdict::kTriggered), "Triggered");
  EXPECT_EQ(VerdictName(Verdict::kNotTriggerable), "NotTriggerable");
  EXPECT_EQ(VerdictName(Verdict::kFailure), "Failure");
  EXPECT_EQ(ResultTypeName(ResultType::kTypeI), "Type-I");
  EXPECT_EQ(ResultTypeName(ResultType::kTypeIII), "Type-III");
}

// Disassemble → reassemble a *corpus* program (with data sections,
// indirect calls, every instruction family) and re-verify: the text
// round trip must preserve pipeline behaviour, not just semantics.
TEST(CoreEdge, CorpusRoundTripThroughAssemblerStillVerifies) {
  const corpus::Pair pair = corpus::BuildPair(8);
  const vm::Program s2 = vm::Assemble(vm::Disassemble(pair.s));
  const vm::Program t2 = vm::Assemble(vm::Disassemble(pair.t));
  Octopocs pipeline(s2, t2, pair.shared_functions, pair.poc);
  const auto report = pipeline.Verify();
  EXPECT_EQ(report.verdict, Verdict::kTriggered) << report.detail;
  EXPECT_EQ(vm::RunProgram(t2, report.reformed_poc).trap,
            vm::TrapKind::kNullDeref);
}

TEST(CoreEdge, ContextFreeStillExposesEncountersCount) {
  const corpus::Pair pair = corpus::BuildPair(4);
  PipelineOptions opts;
  opts.taint.context_aware = false;
  Octopocs pipeline(pair.s, pair.t, pair.shared_functions, pair.poc, opts);
  const auto ep = pipeline.DiscoverEp();
  ASSERT_TRUE(ep.has_value());
  const auto p1 = pipeline.ExtractPrimitives(*ep);
  EXPECT_EQ(p1.ep_encounters, 2u);   // encounters are still counted
  EXPECT_EQ(p1.bunches.size(), 1u);  // ...but collapsed into one bunch
}

}  // namespace
}  // namespace octopocs::core
