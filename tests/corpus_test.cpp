// Corpus ground truth: every pair's S actually crashes on its PoC with
// the documented trap class, ℓ is present in both S and T, and the
// original PoC behaves as each result type requires.
#include <gtest/gtest.h>

#include "corpus/pairs.h"
#include "formats/formats.h"
#include "vm/interp.h"

namespace octopocs::corpus {
namespace {

class CorpusGroundTruth : public ::testing::TestWithParam<int> {};

TEST_P(CorpusGroundTruth, SValidatesAndCrashesOnPoc) {
  const Pair pair = BuildPair(GetParam());
  ASSERT_FALSE(vm::Validate(pair.s).has_value());
  ASSERT_FALSE(vm::Validate(pair.t).has_value());

  vm::ExecOptions opts;
  opts.fuel = 200'000;  // CWE-835 hangs must exhaust quickly in tests
  const auto run = vm::RunProgram(pair.s, pair.poc, opts);
  EXPECT_EQ(run.trap, pair.expected_trap)
      << "S=" << pair.s_name << " trap=" << vm::TrapName(run.trap)
      << " msg=" << run.trap_message;
}

TEST_P(CorpusGroundTruth, SharedFunctionsExistInBoth) {
  const Pair pair = BuildPair(GetParam());
  ASSERT_FALSE(pair.shared_functions.empty());
  for (const std::string& fn : pair.shared_functions) {
    EXPECT_NE(pair.s.FindFunction(fn), vm::kInvalidFunc)
        << fn << " missing from S";
    EXPECT_NE(pair.t.FindFunction(fn), vm::kInvalidFunc)
        << fn << " missing from T";
  }
}

TEST_P(CorpusGroundTruth, SharedFunctionsAreIdenticalClones) {
  // ℓ must be a verbatim clone: same block structure and instruction
  // stream in S and T (the repo's analog of "propagated code").
  const Pair pair = BuildPair(GetParam());
  for (const std::string& name : pair.shared_functions) {
    const vm::Function& fs = pair.s.Fn(pair.s.FindFunction(name));
    const vm::Function& ft = pair.t.Fn(pair.t.FindFunction(name));
    ASSERT_EQ(fs.blocks.size(), ft.blocks.size()) << name;
    for (std::size_t b = 0; b < fs.blocks.size(); ++b) {
      ASSERT_EQ(fs.blocks[b].instrs.size(), ft.blocks[b].instrs.size())
          << name << " block " << b;
      for (std::size_t i = 0; i < fs.blocks[b].instrs.size(); ++i) {
        const vm::Instr& a = fs.blocks[b].instrs[i];
        const vm::Instr& c = ft.blocks[b].instrs[i];
        EXPECT_EQ(a.op, c.op) << name;
        EXPECT_EQ(a.a, c.a);
        EXPECT_EQ(a.b, c.b);
        EXPECT_EQ(a.width, c.width);
        // Call immediates are FuncIds and may legitimately differ
        // between programs; everything else must match.
        if (a.op != vm::Op::kCall && a.op != vm::Op::kFnAddr &&
            a.op != vm::Op::kICall) {
          EXPECT_EQ(a.imm, c.imm) << name;
        }
      }
    }
  }
}

TEST_P(CorpusGroundTruth, OriginalPocBehavesPerResultType) {
  const Pair pair = BuildPair(GetParam());
  vm::ExecOptions opts;
  opts.fuel = 200'000;
  const auto t_run = vm::RunProgram(pair.t, pair.poc, opts);
  switch (pair.expected) {
    case ExpectedResult::kTypeI:
      // The original PoC may or may not crash T directly; nothing to
      // assert beyond T not accepting it as a *different* trap class.
      if (vm::IsCrash(t_run.trap)) {
        EXPECT_EQ(t_run.trap, pair.expected_trap);
      }
      break;
    case ExpectedResult::kTypeII:
      // Reforming must be *necessary*: the original PoC does not
      // reproduce the vulnerability trap in T.
      EXPECT_NE(t_run.trap, pair.expected_trap)
          << "pair " << pair.idx << ": poc already crashes T, "
          << "reforming would be pointless";
      break;
    case ExpectedResult::kTypeIII:
    case ExpectedResult::kFailure:
      EXPECT_NE(t_run.trap, pair.expected_trap);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, CorpusGroundTruth,
                         ::testing::Range(1, 16));

TEST(Corpus, BuildCorpusReturnsAll15InOrder) {
  const auto pairs = BuildCorpus();
  ASSERT_EQ(pairs.size(), 15u);
  for (int i = 0; i < 15; ++i) EXPECT_EQ(pairs[i].idx, i + 1);
}

TEST(Corpus, RejectsBadIndex) {
  EXPECT_THROW(BuildPair(0), std::out_of_range);
  EXPECT_THROW(BuildPair(16), std::out_of_range);
}

TEST(Corpus, ExpectedDistributionMatchesTable2) {
  const auto pairs = BuildCorpus();
  int type1 = 0, type2 = 0, type3 = 0, failure = 0;
  for (const Pair& p : pairs) {
    switch (p.expected) {
      case ExpectedResult::kTypeI: ++type1; break;
      case ExpectedResult::kTypeII: ++type2; break;
      case ExpectedResult::kTypeIII: ++type3; break;
      case ExpectedResult::kFailure: ++failure; break;
    }
  }
  EXPECT_EQ(type1, 6);
  EXPECT_EQ(type2, 3);
  EXPECT_EQ(type3, 5);
  EXPECT_EQ(failure, 1);
}

// Valid (non-PoC) files must parse cleanly in the S binaries that accept
// the respective formats — the decoders are real parsers, not oracles.
TEST(Corpus, ValidFilesParseWithoutCrashing) {
  EXPECT_EQ(vm::RunProgram(BuildPair(1).s, formats::MjpgValidFile()).trap,
            vm::TrapKind::kNone);
  EXPECT_EQ(vm::RunProgram(BuildPair(8).s, formats::Mj2kValidFile()).trap,
            vm::TrapKind::kNone);
  EXPECT_EQ(vm::RunProgram(BuildPair(9).s, formats::MgifValidFile()).trap,
            vm::TrapKind::kNone);
  EXPECT_EQ(vm::RunProgram(BuildPair(10).s, formats::MtifValidFile()).trap,
            vm::TrapKind::kNone);
  EXPECT_EQ(vm::RunProgram(BuildPair(6).s, formats::MpdfValidFile()).trap,
            vm::TrapKind::kNone);
}

// Type-III targets are safe even on their own inputs: the hardcoded-tag
// harnesses never deliver the vulnerable context.
TEST(Corpus, HardcodedTagTargetsAreSafeOnPoc) {
  for (int idx : {10, 11, 12}) {
    const Pair pair = BuildPair(idx);
    const auto run = vm::RunProgram(pair.t, pair.poc);
    EXPECT_FALSE(vm::IsCrash(run.trap))
        << "pair " << idx << " trap " << vm::TrapName(run.trap);
  }
}

}  // namespace
}  // namespace octopocs::corpus
