// Directed/naive symbolic execution (P2) and combining (P3).
//
// The end-to-end cases here are miniature versions of the paper's
// pipeline: extract bunches from S with P1, reform a PoC for T with
// P2+P3, then run T concretely on poc' and observe the crash.
#include <gtest/gtest.h>

#include "cfg/cfg.h"
#include "symex/executor.h"
#include "taint/crash_primitive.h"
#include "vm/asm.h"
#include "vm/interp.h"

namespace octopocs::symex {
namespace {

using vm::Assemble;
using vm::AssembleParts;
using vm::Program;

TEST(DirectedSymex, ReachesEpThroughMagicCheck) {
  // T validates a 4-byte magic before calling ep; directed execution
  // must synthesize the magic to get there.
  const Program t = Assemble(R"(
    func main()
      movi %n, 8
      alloc %buf, %n
      movi %four, 4
      read %got, %buf, %four
      load.4 %magic, %buf, 0
      movi %want, 0x4650444d    ; "MDPF" little-endian
      cmpeq %ok, %magic, %want
      br %ok, good, bad
    good:
      call %v, ep_fn(%ok)
      ret %v
    bad:
      trap
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"));
  const auto r = exec.ReachEp(/*directed=*/true);
  EXPECT_EQ(r.status, SymexStatus::kReachedEp);
}

TEST(DirectedSymex, UnreachableEpIsCfgUnreachable) {
  const Program t = Assemble(R"(
    func main()
      movi %x, 1
      ret %x
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"));
  const auto r = exec.ReachEp(/*directed=*/true);
  EXPECT_EQ(r.status, SymexStatus::kCfgUnreachable);
}

TEST(DirectedSymex, GuardedDeadBranchIsProgramDead) {
  // ep is statically reachable but guarded by an impossible condition:
  // the worklist drains → program-dead (the paper's case iii).
  const Program t = Assemble(R"(
    func main()
      movi %n, 2
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %a, %buf, 0
      movi %big, 300          ; a byte can never be 300
      cmpeq %hit, %a, %big
      br %hit, call_ep, out
    call_ep:
      call %v, ep_fn(%a)
      ret %v
    out:
      ret %a
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"));
  const auto r = exec.ReachEp(/*directed=*/true);
  // The branch constraint a == 300 folds nowhere (a is one symbolic
  // byte); the taken direction carries an unsatisfiable constraint which
  // surfaces either at concretization or as a drained worklist.
  EXPECT_TRUE(r.status == SymexStatus::kProgramDead ||
              r.status == SymexStatus::kUnsat)
      << SymexStatusName(r.status);
}

// Shared vulnerable area ℓ used by the mini S/T pair below: a "record
// decoder" that OOB-writes when the record's two data bytes sum >= 16.
constexpr const char* kSharedDecoder = R"(
  func dec(unused)
    movi %two, 2
    alloc %rec, %two
    read %got, %rec, %two
    load.1 %a, %rec, 0
    load.1 %b, %rec, 1
    add %idx, %a, %b
    movi %lim, 16
    alloc %tbl, %lim
    add %p, %tbl, %idx
    movi %one, 1
    store.1 %one, %p, 0     ; crashes when idx >= 16
    ret %idx
)";

// S: header "SS" + count byte, then `count` records decoded by ℓ.
constexpr const char* kOriginalS = R"(
  func main()
    movi %n, 4
    alloc %hdr, %n
    movi %three, 3
    read %got, %hdr, %three
    load.1 %m0, %hdr, 0
    movi %cs, 'S'
    cmpeq %ok, %m0, %cs
    assert %ok
    load.1 %cnt, %hdr, 2
    movi %i, 0
    movi %zero, 0
  loop:
    cmpltu %more, %i, %cnt
    br %more, body, done
  body:
    call %v, dec(%zero)
    addi %i, %i, 1
    jmp loop
  done:
    ret %i
)";

// T: different container — magic "TT!" + a skip field + count; the
// guiding input differs from S's, the records are the reusable part.
constexpr const char* kPropagatedT = R"(
  func main()
    movi %n, 8
    alloc %hdr, %n
    movi %four, 4
    read %got, %hdr, %four
    load.1 %m0, %hdr, 0
    movi %ct, 'T'
    cmpeq %ok0, %m0, %ct
    assert %ok0
    load.1 %m1, %hdr, 1
    cmpeq %ok1, %m1, %ct
    assert %ok1
    load.1 %m2, %hdr, 2
    movi %bang, '!'
    cmpeq %ok2, %m2, %bang
    assert %ok2
    load.1 %cnt, %hdr, 3
    movi %i, 0
    movi %zero, 0
  loop:
    cmpltu %more, %i, %cnt
    br %more, body, done
  body:
    call %v, dec(%zero)
    addi %i, %i, 1
    jmp loop
  done:
    ret %i
)";

TEST(Combining, ReformsPocAcrossContainers) {
  const Program s = AssembleParts({kSharedDecoder, kOriginalS});
  const Program t = AssembleParts({kSharedDecoder, kPropagatedT});

  // Original PoC for S: "SS", count=2, benign record (1,2), crashing
  // record (0x80, 0x90).
  const Bytes poc{'S', 'S', 2, 1, 2, 0x80, 0x90};
  ASSERT_EQ(vm::RunProgram(s, poc).trap, vm::TrapKind::kOutOfBounds);
  // The original PoC does NOT crash T (wrong container).
  ASSERT_EQ(vm::RunProgram(t, poc).trap, vm::TrapKind::kAbort);

  // P1 on S.
  const auto p1 =
      taint::ExtractCrashPrimitives(s, poc, s.FindFunction("dec"));
  ASSERT_TRUE(p1.Crashed());
  ASSERT_EQ(p1.bunches.size(), 2u);

  // P2+P3 on T.
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("dec"));
  const auto r = exec.GeneratePoc(p1.bunches);
  ASSERT_EQ(r.status, SymexStatus::kPocGenerated) << r.detail;

  // P4: the reformed PoC crashes T with the same trap class.
  const auto verify = vm::RunProgram(t, r.poc);
  EXPECT_EQ(verify.trap, vm::TrapKind::kOutOfBounds);
  // And the guiding region was adapted: poc' starts with T's magic.
  ASSERT_GE(r.poc.size(), 4u);
  EXPECT_EQ(r.poc[0], 'T');
  EXPECT_EQ(r.poc[1], 'T');
  EXPECT_EQ(r.poc[2], '!');
}

TEST(Combining, EpArgumentMismatchIsUnsat) {
  // S passes a file-derived tag to ep and crashes on tag 0x3d; T calls
  // ep with a hardcoded different tag — the Idx 10-12 mechanism.
  const char* shared = R"(
    func vuln(tag)
      movi %bad, 0x3d
      cmpeq %boom, %tag, %bad
      br %boom, crash, fine
    crash:
      trap
    fine:
      ret %tag
  )";
  const char* s_src = R"(
    func main()
      movi %n, 2
      alloc %buf, %n
      movi %one, 1
      read %got, %buf, %one
      load.1 %tag, %buf, 0
      call %v, vuln(%tag)
      ret %v
  )";
  const char* t_src = R"(
    func main()
      movi %tag, 0x10        ; hardcoded, never 0x3d
      call %v, vuln(%tag)
      ret %v
  )";
  const Program s = AssembleParts({shared, s_src});
  const Program t = AssembleParts({shared, t_src});
  const Bytes poc{0x3D};
  const auto p1 = taint::ExtractCrashPrimitives(s, poc, s.FindFunction("vuln"));
  ASSERT_TRUE(p1.Crashed());

  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("vuln"));
  const auto r = exec.GeneratePoc(p1.bunches);
  EXPECT_EQ(r.status, SymexStatus::kUnsat) << SymexStatusName(r.status);
}

TEST(Combining, PatchGuardMakesSystemUnsat) {
  // ℓ crashes when the record byte is >= 0x80; T (patched) rejects such
  // records before decoding — the Idx 13/14 mechanism.
  const char* shared = R"(
    func dec(unused)
      movi %one, 1
      alloc %rec, %one
      read %got, %rec, %one
      load.1 %a, %rec, 0
      movi %lim, 0x80
      cmpltu %ok, %a, %lim
      br %ok, fine, boom
    fine:
      ret %a
    boom:
      trap
  )";
  const char* s_src = R"(
    func main()
      movi %zero, 0
      call %v, dec(%zero)
      ret %v
  )";
  // Patched T peeks the record byte first and bails out when it is
  // large — the shared decoder can then never see a crashing value.
  const char* t_src = R"(
    func main()
      movi %one, 1
      alloc %peek, %one
      read %got, %peek, %one
      load.1 %a, %peek, 0
      movi %lim, 0x80
      cmpltu %ok, %a, %lim
      assert %ok              ; the patch
      movi %zero, 0
      seek %zero              ; rewind for the decoder
      call %v, dec(%zero)
      ret %v
  )";
  const Program s = AssembleParts({shared, s_src});
  const Program t = AssembleParts({shared, t_src});
  const Bytes poc{0x90};
  const auto p1 = taint::ExtractCrashPrimitives(s, poc, s.FindFunction("dec"));
  ASSERT_TRUE(p1.Crashed());
  ASSERT_EQ(p1.bunches.size(), 1u);

  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("dec"));
  const auto r = exec.GeneratePoc(p1.bunches);
  EXPECT_EQ(r.status, SymexStatus::kUnsat) << SymexStatusName(r.status);
}

TEST(DirectedSymex, GuidesThroughInputDependentLoop) {
  // The number of header sections to skip is input-dependent; directed
  // execution must pick some iteration count that reaches ep.
  const Program t = Assemble(R"(
    func main()
      movi %n, 64
      alloc %buf, %n
      movi %one, 1
      read %got, %buf, %one
      load.1 %skips, %buf, 0
      movi %i, 0
    loop:
      cmpltu %more, %i, %skips
      br %more, skip, after
    skip:
      read %g2, %buf, %one     ; consume one filler byte per section
      addi %i, %i, 1
      jmp loop
    after:
      call %v, ep_fn(%i)
      ret %v
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"));
  const auto r = exec.ReachEp(/*directed=*/true);
  EXPECT_EQ(r.status, SymexStatus::kReachedEp) << r.detail;
}

TEST(DirectedSymex, SymbolicLoopBoundedByTheta) {
  // ep sits behind a loop that demands more symbolic iterations than θ
  // allows (every iteration consumes an input byte that must be 0xAA,
  // and exiting requires 200 such bytes). With θ = 8 this is loop-dead.
  const Program t = Assemble(R"(
    func main()
      movi %n, 1
      alloc %buf, %n
      movi %i, 0
      movi %goal, 200
    loop:
      cmpltu %more, %i, %goal
      br %more, body, after
    body:
      read %got, %buf, %n
      load.1 %c, %buf, 0
      movi %aa, 0xaa
      cmpeq %ok, %c, %aa
      assert %ok
      addi %i, %i, 1
      jmp loop
    after:
      call %v, ep_fn(%i)
      ret %v
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  ExecutorOptions opts;
  opts.theta = 8;
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"), opts);
  const auto r = exec.ReachEp(/*directed=*/true);
  EXPECT_EQ(r.status, SymexStatus::kProgramDead) << SymexStatusName(r.status);

  // With a large enough θ the same loop is traversable.
  ExecutorOptions big;
  big.theta = 400;
  SymExecutor exec2(t, graph, t.FindFunction("ep_fn"), big);
  EXPECT_EQ(exec2.ReachEp(true).status, SymexStatus::kReachedEp);
}

// A branch cascade: every byte doubles the path count for the naive
// executor while the directed one follows the single viable route.
std::string BranchCascade(int depth) {
  std::string src = R"(
    func main()
      movi %n, 1
      alloc %buf, %n
  )";
  for (int i = 0; i < depth; ++i) {
    const std::string idx = std::to_string(i);
    // Registers are reused across rounds to stay within the register file.
    src += "  read %g, %buf, %n\n";
    src += "  load.1 %c, %buf, 0\n";
    src += "  movi %k, " + std::to_string(i + 1) + "\n";
    src += "  cmpltu %b, %c, %k\n";
    src += "  br %b, lo" + idx + ", hi" + idx + "\n";
    src += "lo" + idx + ":\n";
    src += "  nop\n";
    src += "  jmp join" + idx + "\n";
    src += "hi" + idx + ":\n";
    src += "  nop\n";
    src += "  jmp join" + idx + "\n";
    src += "join" + idx + ":\n";
  }
  src += R"(
      movi %z, 0
      call %v, ep_fn(%z)
      ret %v
    func ep_fn(x)
      ret %x
  )";
  return src;
}

TEST(NaiveSymex, StateBudgetExhaustsAsMemError) {
  const Program t = Assemble(BranchCascade(16));
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  ExecutorOptions opts;
  opts.max_live_states = 64;  // tiny budget → MemError quickly
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"), opts);
  const auto naive = exec.ReachEp(/*directed=*/false);
  EXPECT_EQ(naive.status, SymexStatus::kBudget) << SymexStatusName(naive.status);

  // Directed mode sails through the same program within the budget.
  const auto directed = exec.ReachEp(/*directed=*/true);
  EXPECT_EQ(directed.status, SymexStatus::kReachedEp);
  EXPECT_LT(directed.stats.peak_live_states, 64u);
}

TEST(DirectedSymex, StatsArePopulated) {
  const Program t = Assemble(R"(
    func main()
      movi %z, 0
      call %v, ep_fn(%z)
      ret %v
    func ep_fn(x)
      ret %x
  )");
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("ep_fn"));
  const auto r = exec.ReachEp(true);
  EXPECT_EQ(r.status, SymexStatus::kReachedEp);
  EXPECT_GT(r.stats.instructions, 0u);
  EXPECT_GE(r.stats.states_created, 1u);
  EXPECT_GT(r.stats.peak_memory_bytes, 0u);
  EXPECT_GE(r.stats.elapsed_seconds, 0.0);
}

TEST(Combining, PocLengthCoversGuidingAndBunches) {
  const Program s = AssembleParts({kSharedDecoder, kOriginalS});
  const Program t = AssembleParts({kSharedDecoder, kPropagatedT});
  const Bytes poc{'S', 'S', 1, 0x80, 0x90};
  const auto p1 = taint::ExtractCrashPrimitives(s, poc, s.FindFunction("dec"));
  ASSERT_TRUE(p1.Crashed());
  const cfg::Cfg graph = cfg::Cfg::Build(t);
  SymExecutor exec(t, graph, t.FindFunction("dec"));
  const auto r = exec.GeneratePoc(p1.bunches);
  ASSERT_EQ(r.status, SymexStatus::kPocGenerated) << r.detail;
  // 4 guiding bytes + one 2-byte record.
  EXPECT_EQ(r.poc.size(), 6u);
  EXPECT_EQ(vm::RunProgram(t, r.poc).trap, vm::TrapKind::kOutOfBounds);
}

}  // namespace
}  // namespace octopocs::symex
