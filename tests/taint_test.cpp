// Taint engine propagation rules and P1 crash-primitive extraction.
#include <gtest/gtest.h>

#include "taint/crash_primitive.h"
#include "taint/taint_engine.h"
#include "vm/asm.h"

namespace octopocs::taint {
namespace {

using vm::Assemble;
using vm::Program;

/// Runs `src` with a taint engine attached and hands the engine to `fn`
/// after the run finishes.
struct TaintRun {
  Program program;
  TaintEngine engine;
  vm::ExecResult result;

  TaintRun(std::string_view src, ByteView input)
      : program(Assemble(src)), engine(program) {
    vm::Interpreter interp(program, input);
    interp.AddObserver(&engine);
    result = interp.Run();
  }
};

TEST(TaintEngine, FileReadSeedsPerByteOffsets) {
  TaintRun run(R"(
    func main()
      movi %n, 4
      alloc %buf, %n
      read %got, %buf, %n
      load.1 %a, %buf, 2
      ret %a
  )", Bytes{10, 20, 30, 40});
  // After the load, %a must carry exactly offset 2.
  // The engine's final frame is main's (program exited; frame popped).
  // Inspect memory instead: buffer base is kHeapBase.
  const TaintSet t = run.engine.MemTaint(vm::kHeapBase + 2, 1);
  EXPECT_EQ(t.items(), (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(run.engine.MemTaint(vm::kHeapBase, 4).size(), 4u);
}

TEST(TaintEngine, AluUnionsSources) {
  // %sum = buf[0] + buf[3]; store it; memory byte must carry {0, 3}.
  TaintRun run(R"(
    func main()
      movi %n, 8
      alloc %buf, %n
      movi %four, 4
      read %got, %buf, %four
      load.1 %a, %buf, 0
      load.1 %b, %buf, 3
      add %sum, %a, %b
      store.1 %sum, %buf, 6
      ret %sum
  )", Bytes{1, 2, 3, 4});
  const TaintSet t = run.engine.MemTaint(vm::kHeapBase + 6, 1);
  EXPECT_EQ(t.items(), (std::vector<std::uint32_t>{0, 3}));
}

TEST(TaintEngine, UntaintedStoreClearsTaint) {
  TaintRun run(R"(
    func main()
      movi %n, 4
      alloc %buf, %n
      read %got, %buf, %n
      movi %zero, 0
      store.1 %zero, %buf, 1   ; overwrite tainted byte with constant
      ret %got
  )", Bytes{9, 9, 9, 9});
  EXPECT_TRUE(run.engine.MemTaint(vm::kHeapBase + 1, 1).empty());
  EXPECT_FALSE(run.engine.MemTaint(vm::kHeapBase + 0, 1).empty());
}

TEST(TaintEngine, TaintFlowsThroughCalls) {
  // Callee doubles a tainted value and returns it; caller stores it.
  TaintRun run(R"(
    func main()
      movi %n, 4
      alloc %buf, %n
      movi %one, 1
      read %got, %buf, %one
      load.1 %v, %buf, 0
      call %d, double(%v)
      store.1 %d, %buf, 2
      ret %d
    func double(x)
      add %r, %x, %x
      ret %r
  )", Bytes{21});
  const TaintSet t = run.engine.MemTaint(vm::kHeapBase + 2, 1);
  EXPECT_EQ(t.items(), (std::vector<std::uint32_t>{0}));
}

TEST(TaintEngine, WideLoadCollectsAllBytes) {
  TaintRun run(R"(
    func main()
      movi %n, 8
      alloc %buf, %n
      movi %four, 4
      read %got, %buf, %four
      load.4 %v, %buf, 0       ; 4-byte field: offsets {0,1,2,3}
      store.4 %v, %buf, 4
      ret %v
  )", Bytes{1, 2, 3, 4});
  const TaintSet t = run.engine.MemTaint(vm::kHeapBase + 4, 1);
  EXPECT_EQ(t.items(), (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(TaintEngine, MovImmCleansRegister) {
  // Tainted value overwritten by a constant, then stored: clean.
  TaintRun run(R"(
    func main()
      movi %n, 4
      alloc %buf, %n
      movi %one, 1
      read %got, %buf, %one
      load.1 %v, %buf, 0
      movi %v, 7
      store.1 %v, %buf, 2
      ret %v
  )", Bytes{5});
  EXPECT_TRUE(run.engine.MemTaint(vm::kHeapBase + 2, 1).empty());
}

// ---------------------------------------------------------------------------
// P1: crash-primitive extraction.
// ---------------------------------------------------------------------------

// S: reads a 2-byte header outside ℓ, then for each record calls the
// shared decoder `dec` (ep) which reads 2 bytes and crashes when the
// byte pair sums above 0xFF (via an OOB index).
constexpr const char* kMultiBunchS = R"(
  func main()
    movi %n, 64
    alloc %buf, %n
    movi %two, 2
    read %got, %buf, %two      ; header: record count at offset 1
    load.1 %cnt, %buf, 1
    movi %i, 0
  loop:
    cmpltu %more, %i, %cnt
    br %more, body, done
  body:
    call %v, dec(%buf)
    addi %i, %i, 1
    jmp loop
  done:
    ret %i
  func dec(buf)
    movi %two, 2
    read %got, %buf, %two      ; record: two bytes
    load.1 %a, %buf, 0
    load.1 %b, %buf, 1
    add %idx, %a, %b
    movi %lim, 16
    alloc %tbl, %lim
    cmpltu %ok, %idx, %lim
    br %ok, fine, boom
  fine:
    ret %a
  boom:
    movi %z, 1
    add %p, %tbl, %idx
    store.1 %z, %p, 0          ; OOB write when idx >= 16
    ret %z
)";

TEST(CrashPrimitive, ExtractsOneBunchPerEpEncounter) {
  const Program s = Assemble(kMultiBunchS);
  // Header: magic 0xAA, count 3. Records: (1,2), (3,4), (0x80,0x90) —
  // the third record crashes (0x80+0x90 = 0x110 >= 16).
  const Bytes poc{0xAA, 3, 1, 2, 3, 4, 0x80, 0x90};
  const auto r =
      ExtractCrashPrimitives(s, poc, s.FindFunction("dec"));
  EXPECT_TRUE(r.Crashed());
  EXPECT_EQ(r.trap, vm::TrapKind::kOutOfBounds);
  EXPECT_EQ(r.ep_encounters, 3u);
  ASSERT_EQ(r.bunches.size(), 3u);
  // Bunch k holds exactly the record bytes consumed at encounter k.
  auto offsets = [](const Bunch& b) {
    std::vector<std::uint32_t> out;
    for (auto& [off, val] : b.bytes) out.push_back(off);
    return out;
  };
  EXPECT_EQ(offsets(r.bunches[0]), (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(offsets(r.bunches[1]), (std::vector<std::uint32_t>{4, 5}));
  EXPECT_EQ(offsets(r.bunches[2]), (std::vector<std::uint32_t>{6, 7}));
  // Values captured from the PoC.
  EXPECT_EQ(r.bunches[2].bytes[0].second, 0x80);
  EXPECT_EQ(r.bunches[2].bytes[1].second, 0x90);
}

TEST(CrashPrimitive, ContextFreeMergesBunches) {
  const Program s = Assemble(kMultiBunchS);
  const Bytes poc{0xAA, 3, 1, 2, 3, 4, 0x80, 0x90};
  ExtractionOptions opts;
  opts.context_aware = false;
  const auto r =
      ExtractCrashPrimitives(s, poc, s.FindFunction("dec"), opts);
  EXPECT_EQ(r.ep_encounters, 3u);
  ASSERT_EQ(r.bunches.size(), 1u);  // everything collapsed
  EXPECT_EQ(r.bunches[0].size(), 6u);
}

TEST(CrashPrimitive, CapturesEpArguments) {
  // ep receives a file-derived tag; the bunch must record it.
  const char* src = R"(
    func main()
      movi %n, 8
      alloc %buf, %n
      movi %one, 1
      read %got, %buf, %one
      load.1 %tag, %buf, 0
      call %v, vuln(%tag)
      ret %v
    func vuln(tag)
      movi %bad, 0x3d
      cmpeq %boom, %tag, %bad
      br %boom, crash, fine
    crash:
      trap
    fine:
      ret %tag
  )";
  const Program s = Assemble(src);
  const Bytes poc{0x3D};
  const auto r = ExtractCrashPrimitives(s, poc, s.FindFunction("vuln"));
  EXPECT_TRUE(r.Crashed());
  ASSERT_EQ(r.bunches.size(), 1u);
  ASSERT_EQ(r.bunches[0].ep_args.size(), 1u);
  EXPECT_EQ(r.bunches[0].ep_args[0], 0x3Du);
}

TEST(CrashPrimitive, IndirectUseBeforeEpIsCaptured) {
  // A byte read *before* entering ℓ, stashed in memory, and only used
  // inside ℓ must still be marked (the "candidate address" rule).
  const char* src = R"(
    func main()
      movi %n, 8
      alloc %stash, %n
      alloc %buf, %n
      movi %one, 1
      read %got, %buf, %one
      load.1 %v, %buf, 0
      store.1 %v, %stash, 0   ; stashed outside ℓ
      call %r, vuln(%stash)
      ret %r
    func vuln(stash)
      load.1 %v, %stash, 0    ; indirect use inside ℓ
      movi %lim, 4
      alloc %tbl, %lim
      add %p, %tbl, %v
      movi %one, 1
      store.1 %one, %p, 0     ; OOB when v >= 4
      ret %v
  )";
  const Program s = Assemble(src);
  const Bytes poc{0xF0};
  const auto r = ExtractCrashPrimitives(s, poc, s.FindFunction("vuln"));
  EXPECT_TRUE(r.Crashed());
  ASSERT_EQ(r.bunches.size(), 1u);
  ASSERT_EQ(r.bunches[0].bytes.size(), 1u);
  EXPECT_EQ(r.bunches[0].bytes[0].first, 0u);
  EXPECT_EQ(r.bunches[0].bytes[0].second, 0xF0);
}

TEST(CrashPrimitive, NonCrashingRunReportsNoCrash) {
  const Program s = Assemble(kMultiBunchS);
  const Bytes benign{0xAA, 1, 1, 2};  // single small record
  const auto r = ExtractCrashPrimitives(s, benign, s.FindFunction("dec"));
  EXPECT_FALSE(r.Crashed());
  EXPECT_EQ(r.ep_encounters, 1u);
}

TEST(CrashPrimitive, RejectsBadEp) {
  const Program s = Assemble(kMultiBunchS);
  EXPECT_THROW(ExtractCrashPrimitives(s, Bytes{}, 99), std::invalid_argument);
}

}  // namespace
}  // namespace octopocs::taint

namespace octopocs::taint {
namespace {

TEST(TaintEngine, MmapLoadsCarryFileOffsets) {
  // Loading through the file mapping taints with the exact offsets, and
  // storing the loaded value propagates them — no read(2) involved.
  TaintRun run(R"(
    func main()
      mmap %base
      load.2 %v, %base, 3
      movi %n, 8
      alloc %buf, %n
      store.2 %v, %buf, 0
      ret %v
  )", Bytes{10, 11, 12, 13, 14, 15});
  const TaintSet t = run.engine.MemTaint(vm::kHeapBase, 1);
  EXPECT_EQ(t.items(), (std::vector<std::uint32_t>{3, 4}));
}

TEST(CrashPrimitive, MmapConsumptionInsideLIsMarked) {
  const char* src = R"(
    func main()
      mmap %base
      call %v, vuln(%base)
      ret %v
    func vuln(base)
      load.1 %idx, %base, 1
      movi %lim, 4
      alloc %tbl, %lim
      add %p, %tbl, %idx
      movi %one, 1
      store.1 %one, %p, 0
      ret %idx
  )";
  const vm::Program s = vm::Assemble(src);
  const Bytes poc{0xAA, 0xF0};
  const auto r = ExtractCrashPrimitives(s, poc, s.FindFunction("vuln"));
  ASSERT_TRUE(r.Crashed());
  ASSERT_EQ(r.bunches.size(), 1u);
  ASSERT_EQ(r.bunches[0].bytes.size(), 1u);
  EXPECT_EQ(r.bunches[0].bytes[0].first, 1u);
  EXPECT_EQ(r.bunches[0].bytes[0].second, 0xF0);
}

}  // namespace
}  // namespace octopocs::taint
