// Symbolic expression construction, folding, and evaluation.
#include <gtest/gtest.h>

#include "support/rng.h"
#include "symex/expr.h"

namespace octopocs::symex {
namespace {

using vm::Op;

TEST(Expr, ConstantFolding) {
  const auto e = MakeBinOp(Op::kAdd, MakeConst(40), MakeConst(2));
  ASSERT_TRUE(e->IsConst());
  EXPECT_EQ(e->value, 42u);
}

TEST(Expr, IdentitySimplifications) {
  const auto x = MakeInput(0);
  EXPECT_EQ(MakeBinOp(Op::kAdd, x, MakeConst(0)).get(), x.get());
  EXPECT_EQ(MakeBinOp(Op::kMul, x, MakeConst(1)).get(), x.get());
  EXPECT_TRUE(MakeBinOp(Op::kMul, x, MakeConst(0))->IsConst());
  EXPECT_EQ(MakeBinOp(Op::kXor, x, x)->value, 0u);
  EXPECT_EQ(MakeBinOp(Op::kCmpEq, x, x)->value, 1u);
  EXPECT_EQ(MakeBinOp(Op::kCmpNe, x, x)->value, 0u);
}

TEST(Expr, EvalMatchesSemantics) {
  // (in[0] + in[1]) * 3 under {in[0]=5, in[1]=7} == 36.
  const auto e = MakeBinOp(
      Op::kMul, MakeBinOp(Op::kAdd, MakeInput(0), MakeInput(1)),
      MakeConst(3));
  const Model m{{0, 5}, {1, 7}};
  EXPECT_EQ(Eval(e, m), 36u);
}

TEST(Expr, EvalAbsentInputReadsZero) {
  EXPECT_EQ(Eval(MakeInput(9), {}), 0u);
}

TEST(Expr, EvalPartialDetectsUnknowns) {
  const auto e = MakeBinOp(Op::kAdd, MakeInput(0), MakeInput(1));
  EXPECT_FALSE(EvalPartial(e, Model{{0, 1}}).has_value());
  EXPECT_EQ(EvalPartial(e, Model{{0, 1}, {1, 2}}), 3u);
}

TEST(Expr, ExtractLanes) {
  const auto wide = MakeBinOp(
      Op::kOr, MakeInput(0),
      MakeBinOp(Op::kShl, MakeInput(1), MakeConst(8)));
  const Model m{{0, 0x34}, {1, 0x12}};
  EXPECT_EQ(Eval(MakeExtract(wide, 0), m), 0x34u);
  EXPECT_EQ(Eval(MakeExtract(wide, 1), m), 0x12u);
  EXPECT_EQ(Eval(MakeExtract(wide, 2), m), 0u);
}

TEST(Expr, ExtractOfInputFolds) {
  const auto in = MakeInput(4);
  EXPECT_EQ(MakeExtract(in, 0).get(), in.get());
  EXPECT_TRUE(MakeExtract(in, 1)->IsConst());  // zero-extended high lanes
  EXPECT_EQ(MakeExtract(in, 1)->value, 0u);
}

TEST(Expr, CollectInputs) {
  const auto e = MakeBinOp(
      Op::kAdd, MakeInput(3),
      MakeBinOp(Op::kMul, MakeInput(7), MakeInput(3)));
  SortedSmallSet<std::uint32_t> vars;
  CollectInputs(e, vars);
  EXPECT_EQ(vars.items(), (std::vector<std::uint32_t>{3, 7}));
}

TEST(Expr, ToStringReadable) {
  const auto e = MakeBinOp(Op::kAdd, MakeInput(3), MakeConst(2));
  EXPECT_EQ(ToString(e), "(in[3] add 0x2)");
}

// Property: ApplyBinOp agrees with native 64-bit arithmetic on random
// operands for every opcode — the fold path and Eval path can't diverge.
class ApplyBinOpProperty : public ::testing::TestWithParam<vm::Op> {};

TEST_P(ApplyBinOpProperty, MatchesNativeSemantics) {
  const vm::Op op = GetParam();
  Rng rng(0xBEEF ^ static_cast<std::uint64_t>(op));
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.Next();
    std::uint64_t b = rng.Next();
    if ((op == Op::kDivU || op == Op::kRemU) && b == 0) b = 1;
    std::uint64_t expect = 0;
    switch (op) {
      case Op::kAdd: expect = a + b; break;
      case Op::kSub: expect = a - b; break;
      case Op::kMul: expect = a * b; break;
      case Op::kDivU: expect = a / b; break;
      case Op::kRemU: expect = a % b; break;
      case Op::kAnd: expect = a & b; break;
      case Op::kOr: expect = a | b; break;
      case Op::kXor: expect = a ^ b; break;
      case Op::kShl: expect = a << (b & 63); break;
      case Op::kShr: expect = a >> (b & 63); break;
      case Op::kCmpEq: expect = a == b; break;
      case Op::kCmpNe: expect = a != b; break;
      case Op::kCmpLtU: expect = a < b; break;
      case Op::kCmpLeU: expect = a <= b; break;
      case Op::kCmpGtU: expect = a > b; break;
      case Op::kCmpGeU: expect = a >= b; break;
      default: break;
    }
    EXPECT_EQ(ApplyBinOp(op, a, b), expect);
    // Folding path must agree with ApplyBinOp.
    const auto folded = MakeBinOp(op, MakeConst(a), MakeConst(b));
    ASSERT_TRUE(folded->IsConst());
    EXPECT_EQ(folded->value, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, ApplyBinOpProperty,
    ::testing::Values(Op::kAdd, Op::kSub, Op::kMul, Op::kDivU, Op::kRemU,
                      Op::kAnd, Op::kOr, Op::kXor, Op::kShl, Op::kShr,
                      Op::kCmpEq, Op::kCmpNe, Op::kCmpLtU, Op::kCmpLeU,
                      Op::kCmpGtU, Op::kCmpGeU));

}  // namespace
}  // namespace octopocs::symex
